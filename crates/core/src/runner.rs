//! The experiment runner: name → spec → run → manifest.
//!
//! Every figure of the paper (and every extension study) is registered
//! here as an [`Experiment`]: it names itself, provides its default
//! [`ExperimentSpec`] at reduced or full scale, and runs against a
//! [`RunContext`] that hands it the scenario and the
//! [`hypatia_viz::sink::ArtifactSink`] all outputs flow
//! through. The [`ExperimentRunner`] owns the registry and the shared
//! lifecycle: build the spec, assemble the constellation once, execute,
//! then write the run's `manifest.json`.

use crate::resilience::DriveOptions;
use crate::scenario::{Scenario, UnknownCityError};
use crate::spec::{ExperimentSpec, SpecError};
use hypatia_viz::sink::ArtifactSink;
use std::fmt;
use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Why an experiment run failed.
#[derive(Debug)]
pub enum RunError {
    /// The requested name is not in the registry.
    UnknownExperiment {
        /// The requested name.
        name: String,
        /// Every registered experiment name.
        available: Vec<String>,
    },
    /// A city name in the spec is not in the scenario's ground segment.
    UnknownCity(UnknownCityError),
    /// The spec is malformed for this experiment.
    BadSpec(String),
    /// Writing an artifact failed.
    Io(io::Error),
    /// The experiment panicked; the supervisor caught it.
    Panicked {
        /// Which experiment was running.
        experiment: String,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The run exceeded its wall-clock deadline.
    DeadlineExceeded {
        /// The configured deadline, seconds.
        limit_s: f64,
        /// Wall-clock seconds actually elapsed when the check fired.
        elapsed_s: f64,
    },
    /// The process exceeded its peak-RSS memory budget.
    BudgetExceeded {
        /// The configured budget, bytes.
        limit_bytes: u64,
        /// Peak RSS observed, bytes.
        peak_bytes: u64,
    },
    /// Writing or restoring a state snapshot failed.
    Checkpoint(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::UnknownExperiment { name, available } => {
                write!(f, "no experiment named {name:?}; available: ")?;
                for (i, n) in available.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}")?;
                }
                Ok(())
            }
            RunError::UnknownCity(e) => write!(f, "{e}"),
            RunError::BadSpec(msg) => write!(f, "bad spec: {msg}"),
            RunError::Io(e) => write!(f, "I/O error: {e}"),
            RunError::Panicked { experiment, message } => {
                write!(f, "experiment {experiment} panicked: {message}")
            }
            RunError::DeadlineExceeded { limit_s, elapsed_s } => {
                write!(f, "deadline exceeded: {elapsed_s:.1} s elapsed, limit {limit_s:.1} s")
            }
            RunError::BudgetExceeded { limit_bytes, peak_bytes } => {
                write!(
                    f,
                    "memory budget exceeded: peak RSS {:.1} MiB, limit {:.1} MiB",
                    *peak_bytes as f64 / (1024.0 * 1024.0),
                    *limit_bytes as f64 / (1024.0 * 1024.0),
                )
            }
            RunError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl RunError {
    /// The process exit code `run_experiment` maps this error to. Each
    /// variant gets a distinct nonzero code (2 is reserved for CLI parse
    /// errors) so wrappers and CI can dispatch on the failure class.
    pub fn exit_code(&self) -> i32 {
        match self {
            RunError::UnknownExperiment { .. } => 3,
            RunError::UnknownCity(_) => 4,
            RunError::BadSpec(_) => 5,
            RunError::Io(_) => 6,
            RunError::Panicked { .. } => 7,
            RunError::DeadlineExceeded { .. } => 8,
            RunError::BudgetExceeded { .. } => 9,
            RunError::Checkpoint(_) => 10,
        }
    }

    /// Whether retrying the same spec can plausibly succeed. Panics and
    /// I/O failures may be transient (poisoned state, full disk being
    /// cleaned); spec errors and blown deadlines or budgets are
    /// deterministic and retrying would only repeat them.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RunError::Panicked { .. } | RunError::Io(_))
    }
}

impl std::error::Error for RunError {}

impl From<UnknownCityError> for RunError {
    fn from(e: UnknownCityError) -> Self {
        RunError::UnknownCity(e)
    }
}

impl From<SpecError> for RunError {
    fn from(e: SpecError) -> Self {
        RunError::BadSpec(e.0)
    }
}

impl From<io::Error> for RunError {
    fn from(e: io::Error) -> Self {
        RunError::Io(e)
    }
}

/// Wall-clock and memory limits, checked at epoch boundaries.
///
/// A watchdog is armed when the supervisor starts an attempt and consulted
/// by the [drive loop](crate::resilience::drive) between simulation
/// segments: overruns surface as typed [`RunError`]s at a point where the
/// freshest checkpoint is already on disk, instead of as an opaque kill.
#[derive(Debug, Clone)]
pub struct Watchdog {
    started: Instant,
    deadline: Option<Duration>,
    max_rss_bytes: Option<u64>,
}

impl Watchdog {
    /// A watchdog that never fires.
    pub fn unlimited() -> Self {
        Watchdog { started: Instant::now(), deadline: None, max_rss_bytes: None }
    }

    /// A watchdog armed with the given limits, starting now.
    pub fn armed(deadline: Option<Duration>, max_rss_bytes: Option<u64>) -> Self {
        Watchdog { started: Instant::now(), deadline, max_rss_bytes }
    }

    /// Err when a limit has been exceeded; cheap enough for every epoch.
    pub fn check(&self) -> Result<(), RunError> {
        if let Some(limit) = self.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > limit {
                return Err(RunError::DeadlineExceeded {
                    limit_s: limit.as_secs_f64(),
                    elapsed_s: elapsed.as_secs_f64(),
                });
            }
        }
        if let Some(limit) = self.max_rss_bytes {
            if let Some(peak) = hypatia_util::mem::peak_rss_bytes() {
                if peak > limit {
                    return Err(RunError::BudgetExceeded { limit_bytes: limit, peak_bytes: peak });
                }
            }
        }
        Ok(())
    }
}

/// Everything an experiment needs while running.
pub struct RunContext {
    /// The spec being executed.
    pub spec: ExperimentSpec,
    /// Where all artifacts go.
    pub sink: ArtifactSink,
    /// Deadline and memory limits for this attempt (unlimited unless the
    /// run goes through [`ExperimentRunner::run_supervised`]).
    pub watchdog: Watchdog,
    scenario: Option<Scenario>,
}

impl RunContext {
    /// A context executing `spec` into `sink`, with no watchdog limits.
    pub fn new(spec: ExperimentSpec, sink: ArtifactSink) -> Self {
        RunContext { spec, sink, watchdog: Watchdog::unlimited(), scenario: None }
    }

    /// The spec's scenario, built once and cached. Returns a cheap clone
    /// (the constellation is shared behind an `Arc`), so the context stays
    /// borrowable for the sink while the scenario is in use.
    pub fn scenario(&mut self) -> Scenario {
        match &self.scenario {
            Some(s) => s.clone(),
            None => {
                let built = self.spec.build_scenario();
                self.scenario = Some(built.clone());
                built
            }
        }
    }

    /// The spec's resilience knobs as [`DriveOptions`], with checkpoints
    /// going under `<out_dir>/checkpoints`.
    pub fn drive_options(&self) -> DriveOptions {
        DriveOptions {
            checkpoint_every: self.spec.checkpoint_every,
            checkpoint_dir: self
                .spec
                .checkpoint_every
                .map(|_| self.sink.out_dir().join("checkpoints")),
            resume_from: self.spec.resume_from.as_ref().map(PathBuf::from),
            audit: self.spec.audit,
        }
    }
}

/// One registered experiment.
pub trait Experiment {
    /// Registry name, e.g. `fig03_rtt_fluctuations`.
    fn name(&self) -> &'static str;
    /// The paper's figure label, e.g. `Fig. 3` (None for label-less runs
    /// like Table 1 — the driver prints a banner only when this is Some).
    fn label(&self) -> Option<&'static str> {
        None
    }
    /// Human-readable title (the figure caption's subject).
    fn title(&self) -> &'static str;
    /// The default spec at reduced (`full = false`) or paper (`full = true`)
    /// scale.
    fn spec(&self, full: bool) -> ExperimentSpec;
    /// Execute against the context, writing artifacts through `ctx.sink`.
    fn run(&self, ctx: &mut RunContext) -> Result<(), RunError>;
}

/// The registry plus the shared run lifecycle.
pub struct ExperimentRunner {
    experiments: Vec<Box<dyn Experiment>>,
}

impl Default for ExperimentRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ExperimentRunner {
    /// A runner with every built-in experiment registered.
    pub fn new() -> Self {
        ExperimentRunner { experiments: crate::figures::builtin_experiments() }
    }

    /// A runner with no experiments (register your own).
    pub fn empty() -> Self {
        ExperimentRunner { experiments: Vec::new() }
    }

    /// Add an experiment (replaces any registered one of the same name).
    pub fn register(&mut self, exp: Box<dyn Experiment>) {
        self.experiments.retain(|e| e.name() != exp.name());
        self.experiments.push(exp);
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.experiments.iter().map(|e| e.name().to_string()).collect()
    }

    /// Look up an experiment by name.
    pub fn get(&self, name: &str) -> Result<&dyn Experiment, RunError> {
        self.experiments.iter().find(|e| e.name() == name).map(|e| e.as_ref()).ok_or_else(|| {
            RunError::UnknownExperiment { name: name.to_string(), available: self.names() }
        })
    }

    /// The default spec for `name` at the given scale.
    pub fn spec(&self, name: &str, full: bool) -> Result<ExperimentSpec, RunError> {
        Ok(self.get(name)?.spec(full))
    }

    /// Execute `spec` with artifacts under `out_dir`; writes the run's
    /// `manifest.json` last. Returns the manifest path.
    pub fn run(&self, spec: ExperimentSpec, out_dir: PathBuf) -> Result<PathBuf, RunError> {
        let exp = self.get(&spec.experiment)?;
        let name = spec.experiment.clone();
        let mut ctx = RunContext::new(spec, ArtifactSink::new(out_dir));
        exp.run(&mut ctx)?;
        Ok(ctx.sink.write_manifest(&name)?)
    }

    /// Like [`run`](Self::run), but with a caller-supplied sink (e.g. one
    /// with `verbose` disabled) — still finishes with the manifest.
    pub fn run_with_sink(
        &self,
        spec: ExperimentSpec,
        sink: ArtifactSink,
    ) -> Result<(PathBuf, ArtifactSink), RunError> {
        let exp = self.get(&spec.experiment)?;
        let name = spec.experiment.clone();
        let mut ctx = RunContext::new(spec, sink);
        exp.run(&mut ctx)?;
        let path = ctx.sink.write_manifest(&name)?;
        Ok((path, ctx.sink))
    }

    /// Execute `spec` under supervision: panics are caught and turned into
    /// [`RunError::Panicked`], wall-clock and memory limits are enforced
    /// through the context's [`Watchdog`], retryable failures are retried
    /// with bounded exponential backoff, and a final failure still salvages
    /// whatever the sink holds into a manifest marked `status: aborted`
    /// (with the freshest checkpoint path, when one exists on disk).
    pub fn run_supervised(
        &self,
        spec: ExperimentSpec,
        out_dir: PathBuf,
        policy: &RunPolicy,
    ) -> Result<PathBuf, RunError> {
        let name = spec.experiment.clone();
        let mut attempt = 0u32;
        loop {
            let mut sink = ArtifactSink::new(out_dir.clone());
            sink.verbose = policy.verbose;
            match self.attempt(spec.clone(), sink) {
                (Ok(path), _) => return Ok(path),
                (Err(err), salvage) => {
                    if attempt < policy.retries && err.is_retryable() {
                        attempt += 1;
                        let backoff = policy.backoff * 2u32.saturating_pow(attempt - 1).min(16);
                        eprintln!(
                            "attempt {attempt}/{} failed ({err}); retrying in {:.1} s",
                            policy.retries + 1,
                            backoff.as_secs_f64(),
                        );
                        std::thread::sleep(backoff);
                        continue;
                    }
                    if let Some(mut sink) = salvage {
                        sink.set_aborted(&err.to_string());
                        if let Some(snap) = latest_snapshot(&out_dir.join("checkpoints")) {
                            sink.set_last_checkpoint(&snap);
                        }
                        if let Err(werr) = sink.write_manifest(&name) {
                            eprintln!("could not salvage aborted manifest: {werr}");
                        }
                    }
                    return Err(err);
                }
            }
        }
    }

    /// One supervised attempt. Returns the sink alongside the error so the
    /// caller can salvage partial artifacts; the sink is `None` only when
    /// the experiment name itself was unknown (nothing ever ran).
    fn attempt(
        &self,
        spec: ExperimentSpec,
        sink: ArtifactSink,
    ) -> (Result<PathBuf, RunError>, Option<ArtifactSink>) {
        let name = spec.experiment.clone();
        let exp = match self.get(&name) {
            Ok(exp) => exp,
            Err(err) => return (Err(err), None),
        };
        let deadline = spec.num("deadline_s").map(Duration::from_secs_f64);
        let max_rss = spec.num("max_rss_mb").map(|mb| (mb * 1024.0 * 1024.0) as u64);
        let mut ctx = RunContext::new(spec, sink);
        ctx.watchdog = Watchdog::armed(deadline, max_rss);
        // The context lives outside the unwind boundary so the sink (and
        // every artifact recorded before the panic) survives for salvage.
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| exp.run(&mut ctx)));
        let result = match outcome {
            Ok(Ok(())) => match ctx.watchdog.check() {
                Ok(()) => ctx.sink.write_manifest(&name).map_err(RunError::Io),
                Err(err) => Err(err),
            },
            Ok(Err(err)) => Err(err),
            Err(payload) => {
                Err(RunError::Panicked { experiment: name, message: panic_message(&payload) })
            }
        };
        (result, Some(ctx.sink))
    }
}

/// How [`ExperimentRunner::run_supervised`] polices an execution.
#[derive(Debug, Clone)]
pub struct RunPolicy {
    /// Extra attempts after the first, for retryable failures only.
    pub retries: u32,
    /// First retry delay; doubles per attempt (capped at 16×).
    pub backoff: Duration,
    /// Forwarded to each attempt's fresh sink.
    pub verbose: bool,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy { retries: 0, backoff: Duration::from_millis(200), verbose: true }
    }
}

impl RunPolicy {
    /// Policy from the spec's free-form params: `retries` counts extra
    /// attempts (the watchdog limits `deadline_s` / `max_rss_mb` are read
    /// per attempt by the supervisor itself).
    pub fn from_spec(spec: &ExperimentSpec) -> Self {
        let mut policy = RunPolicy::default();
        if let Some(n) = spec.num("retries") {
            policy.retries = n.max(0.0) as u32;
        }
        policy
    }
}

/// The panic payload as text, when it carried any.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The most recently modified `.snap` file under `dir`, if any.
fn latest_snapshot(dir: &Path) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<(std::time::SystemTime, PathBuf)> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        if !matches!(path.extension(), Some(ext) if ext == "snap") {
            continue;
        }
        let Ok(modified) = entry.metadata().and_then(|m| m.modified()) else { continue };
        if best.as_ref().map(|(t, _)| modified >= *t).unwrap_or(true) {
            best = Some((modified, path));
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_figures() {
        let runner = ExperimentRunner::new();
        let names = runner.names();
        for expected in [
            "table1_constellations",
            "fig02_scalability",
            "fig03_rtt_fluctuations",
            "fig04_cwnd_bdp",
            "fig05_rates_rtt",
            "fig06_rtt_stretch_ecdf",
            "fig07_rtt_cdfs",
            "fig08_path_hop_cdfs",
            "fig09_timestep",
            "fig10_unused_bandwidth",
            "fig11_constellation_czml",
            "fig12_ground_view",
            "fig13_path_viz",
            "fig14_15_utilization",
            "fig16_19_bent_pipe",
            "ext_bbr_study",
            "ext_multipath_diversity",
            "ext_multipath_te",
            "ext_failure_resilience",
            "ext_flow_scaling",
            "ext_hybrid_mode",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn unknown_name_lists_available() {
        let runner = ExperimentRunner::new();
        let err = match runner.get("fig99_nope") {
            Err(e) => e,
            Ok(_) => panic!("lookup should have failed"),
        };
        let msg = err.to_string();
        assert!(msg.contains("fig99_nope"), "{msg}");
        assert!(msg.contains("fig03_rtt_fluctuations"), "{msg}");
    }

    #[test]
    fn spec_lookup_reports_unknown_names_as_typed_errors() {
        // The `--print-spec` path surfaces this error verbatim: it must
        // name the request and carry the registry, not panic.
        let runner = ExperimentRunner::new();
        match runner.spec("fig99_nope", false) {
            Err(RunError::UnknownExperiment { name, available }) => {
                assert_eq!(name, "fig99_nope");
                assert_eq!(available, runner.names());
            }
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }

    #[test]
    fn every_spec_round_trips_and_names_itself() {
        let runner = ExperimentRunner::new();
        for name in runner.names() {
            for full in [false, true] {
                let spec = runner
                    .spec(&name, full)
                    .unwrap_or_else(|e| panic!("spec lookup for {name} (full={full}): {e}"));
                assert_eq!(spec.experiment, name);
                let back = ExperimentSpec::from_json(&spec.to_json_string())
                    .unwrap_or_else(|e| panic!("{name} (full={full}): {e}"));
                assert_eq!(spec, back, "{name} full={full}");
            }
        }
    }

    #[test]
    fn register_replaces_by_name() {
        struct Dummy;
        impl Experiment for Dummy {
            fn name(&self) -> &'static str {
                "fig03_rtt_fluctuations"
            }
            fn title(&self) -> &'static str {
                "dummy"
            }
            fn spec(&self, _full: bool) -> ExperimentSpec {
                ExperimentSpec::default()
            }
            fn run(&self, _ctx: &mut RunContext) -> Result<(), RunError> {
                Ok(())
            }
        }
        let mut runner = ExperimentRunner::new();
        let before = runner.names().len();
        runner.register(Box::new(Dummy));
        assert_eq!(runner.names().len(), before);
        assert_eq!(runner.get("fig03_rtt_fluctuations").unwrap().title(), "dummy");
    }
}
