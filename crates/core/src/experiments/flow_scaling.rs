//! Extension — traffic scaling under a population-gravity matrix.
//!
//! The paper's Fig. 2 workload is a permutation matrix: every city sources
//! exactly one flow. Real demand is nothing like that — large metros
//! originate and terminate disproportionately many connections. This
//! study draws N flows from a gravity model over the ground segment
//! (pair weight ∝ population product, see
//! [`hypatia_constellation::ground::gravity_pairs`]) and sweeps N from
//! thousands to a million, measuring what actually limits scale:
//!
//! * simulator throughput (events per wall-clock second);
//! * steady-state flow-table footprint (bytes per flow, excluding
//!   in-flight packets — the arena layout keeps this ≤ 128 B/flow);
//! * peak resident set size of the process;
//! * network-wide goodput and Jain fairness over per-flow delivered
//!   bytes (the gravity skew concentrates flows on popular GSLs, so
//!   fairness degrades as N grows — a result a permutation matrix
//!   cannot show).
//!
//! Flows are paced constant-bit-rate UDP. With
//! [`FlowTable::Arena`] endpoint state lives in per-node arena tables
//! ([`hypatia_netsim::BulkUdpSource`] / [`hypatia_netsim::BulkUdpSink`]:
//! one application per node, struct-of-arrays columns, dense
//! [`FlowId`]-indexed accounting); with [`FlowTable::Apps`] every flow
//! gets its own boxed application — the seed layout, kept as a
//! cross-check because both emit identical packets and must produce
//! byte-identical artifacts. Everything is deterministic in (spec, seed).

use crate::experiments::scalability::FlowTable;
use crate::scenario::Scenario;
use hypatia_constellation::ground::gravity_pairs;
use hypatia_constellation::NodeId;
use hypatia_netsim::{BulkUdpSink, BulkUdpSource, EngineReport, FlowId};
use hypatia_util::mem::peak_rss_bytes;
use hypatia_util::{DataRate, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::time::Instant;

/// One measured point of the flow-count sweep.
#[derive(Debug, Clone)]
pub struct FlowScalingPoint {
    /// Offered flow count.
    pub flows: u64,
    /// Events processed.
    pub events: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// Simulator throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Network-wide goodput achieved, Gbit/s.
    pub goodput_gbps: f64,
    /// Jain fairness index over per-flow delivered bytes.
    pub jain: f64,
    /// Steady-state flow-table bytes per flow (both endpoints, excluding
    /// in-flight packets), from the simulator's footprint accounting.
    pub bytes_per_flow: f64,
    /// Peak resident set size after the run, if the platform reports one
    /// (Linux `VmHWM`). Meaningful for one point per process; a sweep in
    /// one process reports its running maximum.
    pub peak_rss_bytes: Option<u64>,
    /// How the engine executed: shard count, epochs, barriers, lookahead.
    pub engine: EngineReport,
}

/// Jain's fairness index `(Σx)² / (n · Σx²)`: 1.0 when every flow got the
/// same share, `1/n` when one flow got everything. Zero-byte flows count
/// (they drag the index down). Degenerate inputs — empty, or nothing
/// delivered at all — report 1.0 (everyone equally got nothing).
pub fn jain_index(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

/// Per-node flow lists in global draw order: what each node sources and
/// sinks, with the ports already assigned.
struct NodePlan {
    /// dst node → (sink ports, global flow ids), index-aligned.
    sinks: BTreeMap<u32, (Vec<u16>, Vec<u32>)>,
    /// src node → (global flow id, dst, src port, dst port) per flow.
    sources: BTreeMap<u32, Vec<(u32, NodeId, u16, u16)>>,
}

/// Assign endpoints and ports for `pairs`. Ports only steer packets to
/// the owning application — per-flow accounting keys on the dense
/// [`FlowId`] inside each datagram — so source ports recycle the
/// 20000-range and sink ports the 40000-range once a node owns more than
/// 20k flows (arena tables deduplicate bound ports; the per-flow-apps
/// layout needs unique ports and therefore caps at 20k flows per node).
fn plan(scenario: &Scenario, pairs: &[(usize, usize)]) -> NodePlan {
    let mut sinks: BTreeMap<u32, (Vec<u16>, Vec<u32>)> = BTreeMap::new();
    let mut sources: BTreeMap<u32, Vec<(u32, NodeId, u16, u16)>> = BTreeMap::new();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let (src, dst) = (scenario.gs(s), scenario.gs(d));
        let sink = sinks.entry(dst.0).or_default();
        let dst_port = 40_000 + (sink.1.len() % 20_000) as u16;
        sink.0.push(dst_port);
        sink.1.push(i as u32);
        let list = sources.entry(src.0).or_default();
        let src_port = 20_000 + (list.len() % 20_000) as u16;
        list.push((i as u32, dst, src_port, dst_port));
    }
    NodePlan { sinks, sources }
}

/// Run one flow-scaling point: `flows` gravity-drawn UDP flows, each
/// paced at `per_flow_rate`, for `virtual_duration` simulated seconds.
/// Observables are byte-identical across [`FlowTable`] layouts; only
/// memory layout and install cost differ.
pub fn run_flow_point(
    scenario: &Scenario,
    flows: u64,
    flow_table: FlowTable,
    per_flow_rate: DataRate,
    virtual_duration: SimDuration,
    seed: u64,
) -> FlowScalingPoint {
    let cities = scenario.constellation.num_ground_stations();
    let pairs = gravity_pairs(cities, flows as usize, seed);
    let stop = SimTime::ZERO + virtual_duration;

    let mut dests: Vec<_> = (0..cities).map(|i| scenario.gs(i)).collect();
    dests.sort_unstable_by_key(|n| n.0);
    let mut sim = scenario.simulator(dests);

    let NodePlan { sinks, sources } = plan(scenario, &pairs);
    let mut sink_apps = Vec::new();
    match flow_table {
        FlowTable::Arena => {
            for (node, (mut ports, flow_list)) in sinks {
                ports.sort_unstable();
                ports.dedup();
                sink_apps.push(sim.add_app_multi(
                    NodeId(node),
                    &ports,
                    Box::new(BulkUdpSink::new(flow_list)),
                ));
            }
            for (node, list) in sources {
                let mut table = BulkUdpSource::new(per_flow_rate, 1440, stop);
                for &(flow, dst, src_port, dst_port) in &list {
                    table.push(FlowId(flow), dst, src_port, dst_port);
                }
                let mut ports = table.src_ports().to_vec();
                ports.sort_unstable();
                ports.dedup();
                sim.add_app_multi(NodeId(node), &ports, Box::new(table));
            }
        }
        FlowTable::Apps => {
            // One boxed application per flow, installed in the same
            // global order the arena tables would walk, emitting the
            // same packets — the cross-check layout.
            for (node, (ports, flow_list)) in sinks {
                for (&port, &flow) in ports.iter().zip(&flow_list) {
                    sink_apps.push(sim.add_app(
                        NodeId(node),
                        port,
                        Box::new(BulkUdpSink::new(vec![flow])),
                    ));
                }
            }
            for (node, list) in sources {
                for &(flow, dst, src_port, dst_port) in &list {
                    let mut solo = BulkUdpSource::new(per_flow_rate, 1440, stop);
                    solo.push(FlowId(flow), dst, src_port, dst_port);
                    sim.add_app(NodeId(node), src_port, Box::new(solo));
                }
            }
        }
    }

    let wall_start = Instant::now();
    sim.run_until(stop);
    let wall_s = wall_start.elapsed().as_secs_f64();

    let mut per_flow = vec![0.0f64; flows as usize];
    for idx in sink_apps {
        let sink: &BulkUdpSink = sim.app_as(idx).expect("bulk UDP sink");
        for (flow, bytes) in sink.per_flow_bytes() {
            per_flow[flow.0 as usize] = bytes as f64;
        }
    }

    let goodput_gbps =
        sim.stats.payload_bytes_delivered as f64 * 8.0 / virtual_duration.secs_f64() / 1e9;
    FlowScalingPoint {
        flows,
        events: sim.stats.events,
        wall_s,
        events_per_sec: if wall_s > 0.0 { sim.stats.events as f64 / wall_s } else { 0.0 },
        goodput_gbps,
        jain: jain_index(&per_flow),
        bytes_per_flow: sim.stats.bytes_per_flow().unwrap_or(0.0),
        peak_rss_bytes: peak_rss_bytes(),
        engine: sim.engine_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ConstellationChoice, ScenarioBuilder};

    fn scenario() -> Scenario {
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(10).build()
    }

    #[test]
    fn jain_index_behaviour() {
        assert_eq!(jain_index(&[5.0, 5.0, 5.0, 5.0]), 1.0);
        let one_hot = jain_index(&[12.0, 0.0, 0.0, 0.0]);
        assert!((one_hot - 0.25).abs() < 1e-12, "{one_hot}");
        assert_eq!(jain_index(&[]), 1.0);
        // All-zero vectors (nothing delivered at all) must report 1.0,
        // not NaN from the 0/0 ratio — a hybrid run where every bulk
        // flow went fluid leaves exactly this packet-side vector.
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[0.0; 64]), 1.0);
    }

    #[test]
    fn gravity_point_is_deterministic_and_delivers() {
        let s = scenario();
        let rate = DataRate::from_kbps(64);
        let dur = SimDuration::from_secs(1);
        let a = run_flow_point(&s, 200, FlowTable::Arena, rate, dur, 7);
        let b = run_flow_point(&s, 200, FlowTable::Arena, rate, dur, 7);
        assert_eq!(a.events, b.events);
        assert_eq!(a.goodput_gbps, b.goodput_gbps, "goodput must be bit-identical");
        assert!(a.goodput_gbps > 0.0);
        assert!(a.jain > 0.0 && a.jain <= 1.0, "jain {}", a.jain);
        assert!(a.events_per_sec > 0.0);
    }

    #[test]
    fn arena_matches_per_flow_apps_exactly() {
        let s = scenario();
        let rate = DataRate::from_kbps(64);
        let dur = SimDuration::from_secs(1);
        let arena = run_flow_point(&s, 500, FlowTable::Arena, rate, dur, 7);
        let apps = run_flow_point(&s, 500, FlowTable::Apps, rate, dur, 7);
        assert_eq!(arena.events, apps.events);
        assert_eq!(arena.goodput_gbps, apps.goodput_gbps, "goodput must be bit-identical");
        assert_eq!(arena.jain, apps.jain, "per-flow accounting must agree");
    }

    #[test]
    fn flow_footprint_stays_under_128_bytes() {
        // The acceptance bound for the arena layout: steady-state endpoint
        // state ≤ 128 bytes per flow, excluding in-flight packets.
        let s = scenario();
        let p = run_flow_point(
            &s,
            10_000,
            FlowTable::Arena,
            DataRate::from_kbps(16),
            SimDuration::from_millis(100),
            7,
        );
        assert!(p.bytes_per_flow > 0.0, "footprint accounting missing");
        assert!(p.bytes_per_flow <= 128.0, "{} B/flow", p.bytes_per_flow);
    }

    #[test]
    fn port_recycling_keeps_large_tables_installable() {
        // 60k flows from 10 cities forces every node past the 20k-port
        // range: installs must still succeed (deduped bindings) and every
        // flow must stay individually accounted.
        let s = scenario();
        let p = run_flow_point(
            &s,
            60_000,
            FlowTable::Arena,
            DataRate::from_kbps(16),
            SimDuration::from_millis(10),
            7,
        );
        assert!(p.events > 0);
        assert!(p.jain > 0.0 && p.jain <= 1.0);
    }
}
