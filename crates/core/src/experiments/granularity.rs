//! Fig. 9 — forwarding-state time-step granularity ablation.
//!
//! Hypatia discretizes a continuous process; this experiment quantifies
//! what coarser time-steps miss. Paths for every pair are sampled at a
//! fine base granularity (paper: 50 ms); coarser granularities (100 ms,
//! 1000 ms) are derived by subsampling. Outputs:
//!
//! * per-time-step network-wide path-change counts (Fig. 9a);
//! * per-pair changes *missed* relative to the fine baseline (Fig. 9b).

use hypatia_constellation::Constellation;
use hypatia_routing::incremental::RoutingConfig;
use hypatia_routing::parallel::sweep_forwarding_states_with;
use hypatia_routing::path::satellites_of;
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct GranularityConfig {
    /// Horizon (paper: 200 s).
    pub duration: SimDuration,
    /// Fine sampling step (paper: 50 ms).
    pub fine_step: SimDuration,
    /// Coarse granularities, as multiples of `fine_step` (paper: ×2 =
    /// 100 ms and ×20 = 1000 ms).
    pub coarse_multiples: Vec<u64>,
    /// Pair distance filter, km.
    pub min_pair_distance_km: f64,
    /// Worker threads for the snapshot-routing pipeline (0 = all cores,
    /// 1 = serial). Results are bit-identical for any value.
    pub threads: usize,
    /// Forwarding-state recomputation strategy (full Dijkstra vs.
    /// incremental repair). Results are byte-identical for every choice.
    pub routing: RoutingConfig,
}

impl Default for GranularityConfig {
    fn default() -> Self {
        GranularityConfig {
            duration: SimDuration::from_secs(200),
            fine_step: SimDuration::from_millis(50),
            coarse_multiples: vec![2, 20],
            min_pair_distance_km: 500.0,
            threads: 0,
            routing: RoutingConfig::default(),
        }
    }
}

/// Statistics for one granularity.
#[derive(Debug, Clone)]
pub struct GranularityStats {
    /// The granularity.
    pub step: SimDuration,
    /// Network-wide path changes observed in each time-step.
    pub changes_per_step: Vec<usize>,
    /// Per-pair changes missed vs the fine baseline.
    pub missed_per_pair: Vec<usize>,
}

impl GranularityStats {
    /// Total changes observed at this granularity.
    pub fn total_changes(&self) -> usize {
        self.changes_per_step.iter().sum()
    }

    /// Fraction of pairs missing at least `k` changes.
    pub fn fraction_missing_at_least(&self, k: usize) -> f64 {
        if self.missed_per_pair.is_empty() {
            return 0.0;
        }
        self.missed_per_pair.iter().filter(|&&m| m >= k).count() as f64
            / self.missed_per_pair.len() as f64
    }
}

/// Result over all requested granularities (index 0 = the fine baseline).
#[derive(Debug, Clone)]
pub struct GranularityResult {
    /// Stats per granularity, fine baseline first.
    pub stats: Vec<GranularityStats>,
    /// Number of pairs analysed.
    pub pairs: usize,
}

fn hash_path(sats: &[hypatia_constellation::NodeId]) -> u64 {
    let mut h = DefaultHasher::new();
    for s in sats {
        s.0.hash(&mut h);
    }
    // Reserve 0 for "disconnected".
    h.finish().max(1)
}

/// Count changes in a subsampled hash sequence, per step.
fn changes_per_step(hashes: &[Vec<u64>], stride: usize) -> (Vec<usize>, Vec<usize>) {
    let pairs = hashes.len();
    let steps = hashes.first().map_or(0, Vec::len);
    let coarse_len = steps.div_ceil(stride);
    let mut per_step = vec![0usize; coarse_len.saturating_sub(1)];
    let mut per_pair = vec![0usize; pairs];
    for (p, series) in hashes.iter().enumerate() {
        let samples: Vec<u64> = series.iter().copied().step_by(stride).collect();
        for (k, w) in samples.windows(2).enumerate() {
            // Mirror the paper's criterion: both snapshots connected and the
            // satellite sequence differs.
            if w[0] != 0 && w[1] != 0 && w[0] != w[1] {
                per_step[k] += 1;
                per_pair[p] += 1;
            }
        }
    }
    (per_step, per_pair)
}

/// Run the granularity experiment on `constellation`.
pub fn run(constellation: &Constellation, cfg: &GranularityConfig) -> GranularityResult {
    let n = constellation.num_ground_stations();
    let dests: Vec<_> = (0..n).map(|i| constellation.gs_node(i)).collect();

    let mut pair_list = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            if constellation.ground_stations[i].distance_km(&constellation.ground_stations[j])
                >= cfg.min_pair_distance_km
            {
                pair_list.push((constellation.gs_node(i), constellation.gs_node(j)));
            }
        }
    }

    // hashes[pair][fine_step] — fine-step snapshots fan out across worker
    // threads; hashing consumes the states in time order, so the series is
    // identical to the serial loop's.
    let mut hashes: Vec<Vec<u64>> = vec![Vec::new(); pair_list.len()];
    let times: Vec<SimTime> =
        TimeSteps::new(SimTime::ZERO, SimTime::ZERO + cfg.duration, cfg.fine_step).collect();
    sweep_forwarding_states_with(
        constellation,
        &times,
        &dests,
        cfg.threads,
        cfg.routing,
        |_, state| {
            for (p, &(src, dst)) in pair_list.iter().enumerate() {
                let h = state
                    .path(src, dst)
                    .map(|path| hash_path(&satellites_of(constellation, &path)))
                    .unwrap_or(0);
                hashes[p].push(h);
            }
        },
    );

    let mut stats = Vec::new();
    let (fine_steps, fine_pairs) = changes_per_step(&hashes, 1);
    stats.push(GranularityStats {
        step: cfg.fine_step,
        changes_per_step: fine_steps,
        missed_per_pair: vec![0; pair_list.len()],
    });
    for &m in &cfg.coarse_multiples {
        assert!(m >= 1, "multiple must be ≥ 1");
        let (per_step, per_pair) = changes_per_step(&hashes, m as usize);
        let missed: Vec<usize> = fine_pairs
            .iter()
            .zip(per_pair.iter())
            .map(|(&fine, &coarse)| fine.saturating_sub(coarse))
            .collect();
        stats.push(GranularityStats {
            step: cfg.fine_step * m,
            changes_per_step: per_step,
            missed_per_pair: missed,
        });
    }

    GranularityResult { stats, pairs: pair_list.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::top_cities;
    use hypatia_constellation::presets;

    fn quick() -> GranularityResult {
        let c = presets::kuiper_k1(top_cities(6));
        run(
            &c,
            &GranularityConfig {
                duration: SimDuration::from_secs(60),
                fine_step: SimDuration::from_millis(500),
                coarse_multiples: vec![2, 8],
                ..GranularityConfig::default()
            },
        )
    }

    /// Thread count must not change the result (steps are independent and
    /// consumed in order).
    #[test]
    fn parallel_granularity_bit_identical_to_serial() {
        let c = presets::kuiper_k1(top_cities(4));
        let run_with = |threads: usize| {
            let r = run(
                &c,
                &GranularityConfig {
                    duration: SimDuration::from_secs(20),
                    fine_step: SimDuration::from_millis(500),
                    coarse_multiples: vec![2, 4],
                    threads,
                    ..GranularityConfig::default()
                },
            );
            format!("{r:?}")
        };
        let serial = run_with(1);
        for threads in [2, 4] {
            assert_eq!(serial, run_with(threads), "thread count {threads} diverged");
        }
    }

    #[test]
    fn coarser_steps_never_see_more_changes() {
        let r = quick();
        assert_eq!(r.stats.len(), 3);
        let fine = r.stats[0].total_changes();
        for s in &r.stats[1..] {
            assert!(
                s.total_changes() <= fine,
                "coarse {} saw {} > fine {}",
                s.step,
                s.total_changes(),
                fine
            );
        }
    }

    #[test]
    fn missed_changes_grow_with_granularity() {
        let r = quick();
        let missed_2x: usize = r.stats[1].missed_per_pair.iter().sum();
        let missed_8x: usize = r.stats[2].missed_per_pair.iter().sum();
        assert!(missed_8x >= missed_2x, "8x missed {missed_8x} < 2x missed {missed_2x}");
    }

    #[test]
    fn fine_baseline_misses_nothing() {
        let r = quick();
        assert!(r.stats[0].missed_per_pair.iter().all(|&m| m == 0));
        assert_eq!(r.stats[0].missed_per_pair.len(), r.pairs);
    }

    #[test]
    fn some_changes_happen_on_kuiper() {
        let r = quick();
        assert!(r.stats[0].total_changes() > 0, "60 s with no path change is implausible");
    }

    #[test]
    fn fraction_helper() {
        let stats = GranularityStats {
            step: SimDuration::from_millis(100),
            changes_per_step: vec![],
            missed_per_pair: vec![0, 0, 1, 2],
        };
        assert_eq!(stats.fraction_missing_at_least(1), 0.5);
        assert_eq!(stats.fraction_missing_at_least(2), 0.25);
        assert_eq!(stats.fraction_missing_at_least(0), 1.0);
    }

    #[test]
    fn hash_reserves_zero_for_disconnected() {
        use hypatia_constellation::NodeId;
        assert_ne!(hash_path(&[NodeId(1), NodeId(2)]), 0);
        assert_ne!(hash_path(&[]), 0);
    }
}
