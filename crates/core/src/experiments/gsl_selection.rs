//! Ablation — GSL selection policy: gateway vs user terminal.
//!
//! Paper §3.1: "Each GS can be configured to either: (a) connect to
//! multiple satellites; or (b) connect to its nearest satellite." Gateways
//! with multiple parabolic antennas use all visible satellites (the
//! evaluation default); a user terminal's single phased array connects to
//! one. This ablation quantifies what the restriction costs: higher RTTs
//! (the nearest satellite is rarely on the best path) and more path churn
//! (every handoff of the single satellite forces a path change).

use hypatia_constellation::gsl::GslSelection;
use hypatia_constellation::Constellation;
use hypatia_routing::forwarding::compute_forwarding_state;
use hypatia_routing::path::PairTracker;
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};

/// Per-policy outcome for one pair.
#[derive(Debug, Clone)]
pub struct SelectionStats {
    /// The policy measured.
    pub selection: GslSelection,
    /// Min snapshot RTT, ms.
    pub min_rtt_ms: f64,
    /// Max snapshot RTT, ms.
    pub max_rtt_ms: f64,
    /// Path changes (paper criterion).
    pub path_changes: usize,
    /// Steps with no path.
    pub disconnected_steps: usize,
}

/// Compare both GSL policies for one pair over `duration` at `step`.
///
/// The same constellation is evaluated twice with only
/// `gsl.selection` changed, so differences are purely the policy's.
pub fn compare(
    constellation: &Constellation,
    src_gs: usize,
    dst_gs: usize,
    duration: SimDuration,
    step: SimDuration,
) -> (SelectionStats, SelectionStats) {
    let run = |selection: GslSelection| {
        let mut c = constellation.clone();
        c.gsl.selection = selection;
        let (src, dst) = (c.gs_node(src_gs), c.gs_node(dst_gs));
        let mut tracker = PairTracker::new(src, dst, false);
        for t in TimeSteps::new(SimTime::ZERO, SimTime::ZERO + duration, step) {
            let st = compute_forwarding_state(&c, t, &[dst]);
            tracker.observe(&c, &st);
        }
        SelectionStats {
            selection,
            min_rtt_ms: tracker.min_rtt.map_or(f64::NAN, |r| r.secs_f64() * 1e3),
            max_rtt_ms: tracker.max_rtt.map_or(f64::NAN, |r| r.secs_f64() * 1e3),
            path_changes: tracker.path_changes,
            disconnected_steps: tracker.disconnected_steps,
        }
    };
    (run(GslSelection::AllVisible), run(GslSelection::NearestOnly))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::top_cities;
    use hypatia_constellation::presets;

    #[test]
    fn nearest_only_never_beats_all_visible() {
        let c = presets::kuiper_k1(top_cities(10));
        let (all, nearest) =
            compare(&c, 0, 1, SimDuration::from_secs(60), SimDuration::from_secs(2));
        assert_eq!(all.selection, GslSelection::AllVisible);
        assert_eq!(nearest.selection, GslSelection::NearestOnly);
        if all.min_rtt_ms.is_finite() && nearest.min_rtt_ms.is_finite() {
            // The nearest satellite is one of the visible set, so the
            // restricted policy can never yield a shorter shortest path.
            assert!(
                nearest.min_rtt_ms >= all.min_rtt_ms - 1e-6,
                "nearest-only {} ms beat all-visible {} ms",
                nearest.min_rtt_ms,
                all.min_rtt_ms
            );
        }
        // And it can only be disconnected at least as often.
        assert!(nearest.disconnected_steps >= all.disconnected_steps);
    }

    #[test]
    fn comparing_does_not_mutate_the_input() {
        // `compare` clones internally; the caller's constellation keeps its
        // original (default) selection policy.
        let c = presets::telesat_t1(top_cities(4));
        let before = c.gsl.selection;
        let _ = compare(&c, 0, 2, SimDuration::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(c.gsl.selection, before);
        assert_eq!(before, GslSelection::AllVisible);
    }

    #[test]
    fn nearest_only_changes_paths_at_least_as_often() {
        // Every handoff of the single usable satellite forces a path
        // change; the multi-satellite policy can often keep an unrelated
        // (still-visible) ingress satellite.
        let c = presets::kuiper_k1(top_cities(8));
        let (all, nearest) =
            compare(&c, 2, 5, SimDuration::from_secs(120), SimDuration::from_secs(2));
        assert!(
            nearest.path_changes + 1 >= all.path_changes,
            "nearest-only {} vs all-visible {}",
            nearest.path_changes,
            all.path_changes
        );
    }
}
