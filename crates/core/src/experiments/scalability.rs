//! Fig. 2 — simulator scalability: slowdown vs achieved goodput.
//!
//! The paper's workload: Kuiper K1, the 100 most populous cities as GSes,
//! a random permutation traffic matrix, and either long-running TCP flows
//! or line-rate paced UDP; the line rate is swept to control goodput.
//! "Slowdown" is wall-clock seconds per simulated second. Absolute numbers
//! depend on the host (the paper used a 2.26 GHz Xeon L5520 core); the
//! reproducible shape is slowdown growing ∝ goodput, with TCP costing
//! roughly 2× UDP per delivered byte.

use crate::resilience::{drive, DriveOptions, DriveOutcome};
use crate::runner::{RunError, Watchdog};
use crate::scenario::Scenario;
use hypatia_constellation::NodeId;
use hypatia_netsim::apps::{UdpSink, UdpSource};
use hypatia_netsim::{BulkUdpSink, BulkUdpSource, EngineReport, FlowId};
use hypatia_transport::{BulkTcpSender, BulkTcpSink, NewReno, TcpConfig, TcpSender, TcpSink};
use hypatia_util::{DataRate, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::time::Instant;

/// Workload type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Long-running TCP (NewReno) flows.
    Tcp,
    /// Line-rate paced UDP.
    Udp,
}

impl Workload {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Tcp => "TCP",
            Workload::Udp => "UDP",
        }
    }
}

/// How per-flow endpoint state is laid out in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTable {
    /// One boxed application per flow on its own port (the seed layout).
    Apps,
    /// Arena flow tables: one bulk application per node holding all of
    /// that node's flows in struct-of-arrays columns. Observables are
    /// byte-identical to [`FlowTable::Apps`]; only memory layout and
    /// install cost differ.
    Arena,
}

impl FlowTable {
    /// Display / spec name.
    pub fn name(self) -> &'static str {
        match self {
            FlowTable::Apps => "apps",
            FlowTable::Arena => "arena",
        }
    }

    /// Parse a spec value (`apps` or `arena`).
    pub fn parse(s: &str) -> Option<FlowTable> {
        match s {
            "apps" => Some(FlowTable::Apps),
            "arena" => Some(FlowTable::Arena),
            _ => None,
        }
    }
}

/// One measured point of Fig. 2.
#[derive(Debug, Clone)]
pub struct ScalabilityPoint {
    /// Workload type.
    pub workload: Workload,
    /// Line rate used.
    pub line_rate: DataRate,
    /// Network-wide goodput achieved, Gbit/s.
    pub goodput_gbps: f64,
    /// Wall-clock seconds per simulated second.
    pub slowdown: f64,
    /// Events processed.
    pub events: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// How the engine executed: shard count, epochs, barriers, lookahead.
    pub engine: EngineReport,
}

/// Run one scalability point: permutation traffic at `line_rate` for
/// `virtual_duration` simulated seconds, measuring wall time. No
/// checkpoints, audits, or limits — see [`run_point_with`].
pub fn run_point(
    scenario: &Scenario,
    workload: Workload,
    flow_table: FlowTable,
    line_rate: DataRate,
    virtual_duration: SimDuration,
    seed: u64,
) -> ScalabilityPoint {
    match run_point_with(
        scenario,
        workload,
        flow_table,
        line_rate,
        virtual_duration,
        seed,
        &DriveOptions::off(),
        &Watchdog::unlimited(),
    ) {
        Ok((point, _)) => point,
        // With resilience off and no watchdog the drive loop is a plain
        // `run_until`; it has no failure path.
        Err(e) => unreachable!("plain scalability run cannot fail: {e}"),
    }
}

/// The snapshot tag for one scalability point — deterministic for the
/// spec, so a resumed run finds the snapshot its predecessor wrote.
pub fn point_tag(workload: Workload, flow_table: FlowTable, line_rate: DataRate) -> String {
    format!("{}_{}_{}bps", workload.name().to_lowercase(), flow_table.name(), line_rate.bps())
}

/// [`run_point`] under the resilience drive loop: the simulation advances
/// in checkpoint-interval segments (resuming from a prior snapshot when
/// `opts.resume_from` holds one for this point's [`point_tag`]), runs
/// conservation audits at segment boundaries, and honours the watchdog's
/// deadline and memory budget.
#[allow(clippy::too_many_arguments)]
pub fn run_point_with(
    scenario: &Scenario,
    workload: Workload,
    flow_table: FlowTable,
    line_rate: DataRate,
    virtual_duration: SimDuration,
    seed: u64,
    opts: &DriveOptions,
    watchdog: &Watchdog,
) -> Result<(ScalabilityPoint, DriveOutcome), RunError> {
    let pairs = scenario.permutation_pairs(seed);
    let mut sim_config = scenario.sim_config.clone();
    sim_config.link_rate = line_rate;

    let mut dests: Vec<_> =
        (0..scenario.constellation.num_ground_stations()).map(|i| scenario.gs(i)).collect();
    dests.sort_unstable_by_key(|n| n.0);

    let mut sim = hypatia_netsim::Simulator::new(scenario.constellation.clone(), sim_config, dests);

    let stop = SimTime::ZERO + virtual_duration;
    match (workload, flow_table) {
        (Workload::Udp, FlowTable::Apps) => {
            for (i, &(s, d)) in pairs.iter().enumerate() {
                let (src, dst) = (scenario.gs(s), scenario.gs(d));
                sim.add_app(dst, 40_000 + i as u16, Box::new(UdpSink::new()));
                sim.add_app(
                    src,
                    20_000 + i as u16,
                    Box::new(UdpSource::new(dst, i as u32, line_rate, 1440, stop)),
                );
            }
        }
        (Workload::Udp, FlowTable::Arena) => {
            // Same ports, same packets: the legacy source addresses its own
            // port at the destination, so the bulk table replicates that
            // (and the 40 000-range sink ports stay bound but idle, exactly
            // as with per-flow apps).
            let mut sources: BTreeMap<u32, BulkUdpSource> = BTreeMap::new();
            let mut sinks: BTreeMap<u32, (Vec<u16>, Vec<u32>)> = BTreeMap::new();
            for (i, &(s, d)) in pairs.iter().enumerate() {
                let (src, dst) = (scenario.gs(s), scenario.gs(d));
                let sink = sinks.entry(dst.0).or_default();
                sink.0.push(40_000 + i as u16);
                sink.1.push(i as u32);
                sources
                    .entry(src.0)
                    .or_insert_with(|| BulkUdpSource::new(line_rate, 1440, stop))
                    .push(FlowId(i as u32), dst, 20_000 + i as u16, 20_000 + i as u16);
            }
            for (node, (ports, flows)) in sinks {
                sim.add_app_multi(NodeId(node), &ports, Box::new(BulkUdpSink::new(flows)));
            }
            for (node, table) in sources {
                let ports = table.src_ports().to_vec();
                sim.add_app_multi(NodeId(node), &ports, Box::new(table));
            }
        }
        (Workload::Tcp, FlowTable::Apps) => {
            let cfg = TcpConfig::default();
            for (i, &(s, d)) in pairs.iter().enumerate() {
                let (src, dst) = (scenario.gs(s), scenario.gs(d));
                sim.add_app(dst, 40_000 + i as u16, Box::new(TcpSink::new(cfg.clone())));
                sim.add_app(
                    src,
                    20_000 + i as u16,
                    Box::new(TcpSender::new(
                        dst,
                        40_000 + i as u16,
                        cfg.clone(),
                        Box::new(NewReno::new()),
                    )),
                );
            }
        }
        (Workload::Tcp, FlowTable::Arena) => {
            let cfg = TcpConfig::default();
            let mut senders: BTreeMap<u32, BulkTcpSender> = BTreeMap::new();
            let mut sinks: BTreeMap<u32, BulkTcpSink> = BTreeMap::new();
            for (i, &(s, d)) in pairs.iter().enumerate() {
                let (src, dst) = (scenario.gs(s), scenario.gs(d));
                sinks.entry(dst.0).or_default().push(40_000 + i as u16, cfg.clone());
                senders.entry(src.0).or_default().push(
                    20_000 + i as u16,
                    dst,
                    40_000 + i as u16,
                    cfg.clone(),
                    Box::new(NewReno::new()),
                );
            }
            for (node, table) in sinks {
                let ports = table.ports();
                sim.add_app_multi(NodeId(node), &ports, Box::new(table));
            }
            for (node, table) in senders {
                let ports = table.ports();
                sim.add_app_multi(NodeId(node), &ports, Box::new(table));
            }
        }
    }

    let tag = point_tag(workload, flow_table, line_rate);
    let wall_start = Instant::now();
    let outcome = drive(&mut sim, stop, &tag, opts, watchdog)?;
    // Checkpoint writes are I/O, not simulation: keep them out of the
    // slowdown measurement (the whole point of Fig. 2).
    let wall = (wall_start.elapsed().as_secs_f64() - outcome.checkpoint_wall_s).max(0.0);

    let goodput_gbps =
        sim.stats.payload_bytes_delivered as f64 * 8.0 / virtual_duration.secs_f64() / 1e9;
    let point = ScalabilityPoint {
        workload,
        line_rate,
        goodput_gbps,
        slowdown: wall / virtual_duration.secs_f64(),
        events: sim.stats.events,
        wall_s: wall,
        engine: sim.engine_report(),
    };
    Ok((point, outcome))
}

/// Sweep line rates for one workload (the full Fig. 2 series).
pub fn sweep(
    scenario: &Scenario,
    workload: Workload,
    flow_table: FlowTable,
    line_rates: &[DataRate],
    virtual_duration: SimDuration,
    seed: u64,
) -> Vec<ScalabilityPoint> {
    line_rates
        .iter()
        .map(|&r| run_point(scenario, workload, flow_table, r, virtual_duration, seed))
        .collect()
}

/// [`sweep`] under the resilience drive loop (see [`run_point_with`]).
#[allow(clippy::too_many_arguments)]
pub fn sweep_with(
    scenario: &Scenario,
    workload: Workload,
    flow_table: FlowTable,
    line_rates: &[DataRate],
    virtual_duration: SimDuration,
    seed: u64,
    opts: &DriveOptions,
    watchdog: &Watchdog,
) -> Result<Vec<(ScalabilityPoint, DriveOutcome)>, RunError> {
    line_rates
        .iter()
        .map(|&r| {
            run_point_with(
                scenario,
                workload,
                flow_table,
                r,
                virtual_duration,
                seed,
                opts,
                watchdog,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ConstellationChoice, ScenarioBuilder};

    fn scenario() -> Scenario {
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(10).build()
    }

    #[test]
    fn udp_point_achieves_goodput() {
        let s = scenario();
        let p = run_point(
            &s,
            Workload::Udp,
            FlowTable::Apps,
            DataRate::from_mbps(1),
            SimDuration::from_secs(2),
            3,
        );
        // 10 flows at ≤1 Mbps each.
        assert!(p.goodput_gbps > 0.0005, "goodput {} Gbps", p.goodput_gbps);
        assert!(p.goodput_gbps < 0.011);
        assert!(p.slowdown > 0.0);
        assert!(p.events > 1000);
    }

    #[test]
    fn tcp_point_achieves_goodput() {
        let s = scenario();
        let p = run_point(
            &s,
            Workload::Tcp,
            FlowTable::Apps,
            DataRate::from_mbps(1),
            SimDuration::from_secs(2),
            3,
        );
        assert!(p.goodput_gbps > 0.0002, "goodput {} Gbps", p.goodput_gbps);
    }

    #[test]
    fn goodput_scales_with_line_rate() {
        let s = scenario();
        let points = sweep(
            &s,
            Workload::Udp,
            FlowTable::Apps,
            &[DataRate::from_kbps(256), DataRate::from_mbps(2)],
            SimDuration::from_secs(2),
            3,
        );
        assert!(
            points[1].goodput_gbps > 3.0 * points[0].goodput_gbps,
            "{} vs {}",
            points[1].goodput_gbps,
            points[0].goodput_gbps
        );
    }

    #[test]
    fn arena_matches_apps_observables_exactly() {
        // Same workload, two layouts: the arena flow table must reproduce
        // the per-flow-apps run event for event — identical event counts
        // and identical delivered bytes, for both UDP and TCP.
        let s = scenario();
        for workload in [Workload::Udp, Workload::Tcp] {
            let rate = DataRate::from_mbps(1);
            let dur = SimDuration::from_secs(2);
            let apps = run_point(&s, workload, FlowTable::Apps, rate, dur, 3);
            let arena = run_point(&s, workload, FlowTable::Arena, rate, dur, 3);
            assert_eq!(apps.events, arena.events, "{} events", workload.name());
            assert_eq!(
                apps.goodput_gbps,
                arena.goodput_gbps,
                "{} goodput must be bit-identical",
                workload.name()
            );
        }
    }

    #[test]
    fn flow_table_parses_spec_names() {
        assert_eq!(FlowTable::parse("apps"), Some(FlowTable::Apps));
        assert_eq!(FlowTable::parse("arena"), Some(FlowTable::Arena));
        assert_eq!(FlowTable::parse("soa"), None);
        assert_eq!(FlowTable::Arena.name(), "arena");
    }
}
