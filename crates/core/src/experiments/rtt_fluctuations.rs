//! Fig. 3 — RTT fluctuations: pings vs snapshot-computed RTTs.
//!
//! For a GS pair, (a) run the packet simulator with a periodic ping and
//! collect measured RTTs; (b) compute the networkx-equivalent snapshot
//! RTTs at the forwarding granularity. The two must agree closely except
//! around forwarding-state changes (packets in flight take the old path —
//! the paper's "detour" spikes), and St. Petersburg's Kuiper outage
//! appears as a gap.

use crate::scenario::{Scenario, UnknownCityError};
use hypatia_netsim::apps::PingApp;
use hypatia_netsim::EngineReport;
use hypatia_routing::forwarding::compute_forwarding_state;
use hypatia_routing::path::PairTracker;
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};

/// Parameters for a Fig. 3-style run.
#[derive(Debug, Clone)]
pub struct RttFluctuationConfig {
    /// Simulated duration (paper: 200 s).
    pub duration: SimDuration,
    /// Ping spacing (paper: 1 ms; the default here is 10 ms, which leaves
    /// the measured envelope identical at 1% of the event cost).
    pub ping_interval: SimDuration,
}

impl Default for RttFluctuationConfig {
    fn default() -> Self {
        RttFluctuationConfig {
            duration: SimDuration::from_secs(200),
            ping_interval: SimDuration::from_millis(10),
        }
    }
}

/// Result of a Fig. 3 run for one pair.
#[derive(Debug, Clone)]
pub struct RttFluctuationResult {
    /// `(ping send time s, measured RTT ms)`.
    pub ping_series: Vec<(f64, f64)>,
    /// `(snapshot time s, computed RTT ms; NaN when disconnected)`.
    pub computed_series: Vec<(f64, f64)>,
    /// Pings sent / received.
    pub sent: u64,
    /// Pings answered.
    pub received: u64,
    /// Seconds during which the pair had no path (snapshot granularity).
    pub disconnected_seconds: f64,
    /// Maximum of the computed RTT, ms (ignoring gaps).
    pub max_computed_ms: f64,
    /// Minimum of the computed RTT, ms.
    pub min_computed_ms: f64,
    /// Events the simulator processed.
    pub events: u64,
    /// Wall-clock seconds the packet simulation took.
    pub wall_s: f64,
    /// How the engine executed: shard count, epochs, barriers, lookahead.
    pub engine: EngineReport,
}

/// Run the experiment for `(src_name, dst_name)` on `scenario`.
pub fn run(
    scenario: &Scenario,
    src_name: &str,
    dst_name: &str,
    cfg: &RttFluctuationConfig,
) -> Result<RttFluctuationResult, UnknownCityError> {
    let src = scenario.gs_by_name(src_name)?;
    let dst = scenario.gs_by_name(dst_name)?;

    // (a) Packet-level pings.
    let mut sim = scenario.simulator(vec![src, dst]);
    let stop = SimTime::ZERO + cfg.duration;
    let app = sim.add_app(src, 7, Box::new(PingApp::new(dst, cfg.ping_interval, stop)));
    // Drain stragglers for a second beyond the last probe.
    let wall_start = std::time::Instant::now();
    sim.run_until(stop + SimDuration::from_secs(1));
    let wall_s = wall_start.elapsed().as_secs_f64();
    let ping: &PingApp = sim.app_as(app).expect("ping app");
    let ping_series: Vec<(f64, f64)> =
        ping.rtts().iter().map(|&(t, rtt)| (t.secs_f64(), rtt.secs_f64() * 1e3)).collect();
    let (sent, received) = (ping.sent(), ping.received());

    // (b) Snapshot-computed RTTs (the paper's networkx line).
    let step = scenario.sim_config.fstate_step;
    let mut tracker = PairTracker::new(src, dst, true);
    let mut computed_series = Vec::new();
    for t in TimeSteps::new(SimTime::ZERO, stop, step) {
        let state = compute_forwarding_state(&scenario.constellation, t, &[dst]);
        tracker.observe(&scenario.constellation, &state);
        let rtt_ms =
            tracker.series().last().and_then(|o| o.rtt).map_or(f64::NAN, |r| r.secs_f64() * 1e3);
        computed_series.push((t.secs_f64(), rtt_ms));
    }

    let finite: Vec<f64> =
        computed_series.iter().map(|&(_, r)| r).filter(|r| r.is_finite()).collect();
    let max_computed_ms = finite.iter().copied().fold(f64::NAN, f64::max);
    let min_computed_ms = finite.iter().copied().fold(f64::NAN, f64::min);

    Ok(RttFluctuationResult {
        ping_series,
        computed_series,
        sent,
        received,
        disconnected_seconds: tracker.disconnected_steps as f64 * step.secs_f64(),
        max_computed_ms,
        min_computed_ms,
        events: sim.stats.events,
        wall_s,
        engine: sim.engine_report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ConstellationChoice, ScenarioBuilder};
    use hypatia_constellation::ground::GroundStation;

    fn scenario() -> Scenario {
        ScenarioBuilder::new(ConstellationChoice::KuiperK1)
            .ground_stations(vec![
                GroundStation::new("Istanbul", 41.0082, 28.9784),
                GroundStation::new("Nairobi", -1.2921, 36.8219),
            ])
            .build()
    }

    fn short_cfg() -> RttFluctuationConfig {
        RttFluctuationConfig {
            duration: SimDuration::from_secs(10),
            ping_interval: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn pings_and_computed_agree() {
        let s = scenario();
        let r = run(&s, "Istanbul", "Nairobi", &short_cfg()).expect("known cities");
        assert!(r.received > 80, "received {}", r.received);
        assert_eq!(r.disconnected_seconds, 0.0);
        // Every ping RTT within [min_computed − 1 ms, max_computed + 5 ms]
        // (pings launched just before a path change may ride a detour).
        for &(t, rtt) in &r.ping_series {
            assert!(
                rtt > r.min_computed_ms - 1.0 && rtt < r.max_computed_ms + 5.0,
                "ping at {t}s has RTT {rtt} outside [{} , {}]",
                r.min_computed_ms,
                r.max_computed_ms
            );
        }
        // Median ping tracks the computed envelope to within ~1 ms (pings
        // additionally pay per-hop serialization, ~50 µs/hop at 10 Mbps).
        let mut rtts: Vec<f64> = r.ping_series.iter().map(|&(_, x)| x).collect();
        rtts.sort_by(f64::total_cmp);
        let med = rtts[rtts.len() / 2];
        assert!(
            med >= r.min_computed_ms - 0.1 && med <= r.max_computed_ms + 1.5,
            "median ping {med} vs computed [{}, {}]",
            r.min_computed_ms,
            r.max_computed_ms
        );
    }

    #[test]
    fn computed_series_covers_duration() {
        let s = scenario();
        let r = run(&s, "Istanbul", "Nairobi", &short_cfg()).expect("known cities");
        // 10 s at the default 100 ms granularity = 100 samples.
        assert_eq!(r.computed_series.len(), 100);
        assert!(r.max_computed_ms >= r.min_computed_ms);
        assert!(r.min_computed_ms > 10.0, "Istanbul–Nairobi RTT must exceed 10 ms");
    }

    /// The paper's St. Petersburg outage, in miniature: over a long enough
    /// horizon the Rio–St. Petersburg pair sees disconnected periods.
    #[test]
    #[ignore = "long: scans 1000 s of Kuiper K1 connectivity"]
    fn rio_st_petersburg_sees_outages() {
        let s = ScenarioBuilder::new(ConstellationChoice::KuiperK1)
            .ground_stations(vec![
                GroundStation::new("Rio de Janeiro", -22.9068, -43.1729),
                GroundStation::new("Saint Petersburg", 59.9311, 30.3609),
            ])
            .build();
        let cfg = RttFluctuationConfig {
            duration: SimDuration::from_secs(1000),
            ping_interval: SimDuration::from_millis(200),
        };
        let r = run(&s, "Rio de Janeiro", "Saint Petersburg", &cfg).expect("known cities");
        assert!(
            r.disconnected_seconds > 0.0,
            "expected an outage over 1000 s; max RTT {}",
            r.max_computed_ms
        );
    }
}
