//! Canned, parameterized runners for every experiment in the paper.
//!
//! Each module maps to a figure/table of the evaluation (the full index
//! lives in `DESIGN.md`); the `hypatia-bench` crate wraps these in binaries
//! that print the same rows/series the paper plots.
//!
//! | Module | Paper artefacts |
//! |---|---|
//! | [`scalability`] | Fig. 2 |
//! | [`rtt_fluctuations`] | Fig. 3 |
//! | [`tcp_single`] | Figs. 4, 5 |
//! | [`pair_sweep`] | Figs. 6, 7, 8 |
//! | [`granularity`] | Fig. 9 |
//! | [`cross_traffic`] | Figs. 10, 14, 15 |
//! | [`bent_pipe`] | Figs. 16–19 (Appendix A) |
//! | [`gsl_selection`] | ablation: gateway vs user-terminal GSL policy (§3.1) |
//! | [`flow_scaling`] | extension: gravity traffic matrix, 1k→1M flows |
//! | [`hybrid`] | extension: hybrid fluid/packet simulation of bulk traffic |

pub mod bent_pipe;
pub mod cross_traffic;
pub mod flow_scaling;
pub mod granularity;
pub mod gsl_selection;
pub mod hybrid;
pub mod pair_sweep;
pub mod rtt_fluctuations;
pub mod scalability;
pub mod tcp_single;
