//! Figs. 4 & 5 — TCP over a changing path, absent competition.
//!
//! One long-running TCP flow on an otherwise empty network. Outputs the
//! congestion-window evolution with the instantaneous BDP+Q overlay
//! (Fig. 4), the per-packet RTT, and the 100 ms-averaged throughput —
//! enabling the NewReno-vs-Vegas comparison of Fig. 5.

use crate::scenario::{Scenario, UnknownCityError};
use hypatia_netsim::EngineReport;
use hypatia_routing::forwarding::compute_forwarding_state;
use hypatia_transport::{Bbr, Cubic, NewReno, TcpConfig, TcpSender, TcpSink, Vegas};
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};

/// Which congestion controller to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CcKind {
    /// Loss-based (paper's default).
    NewReno,
    /// Delay-based (paper's counterpoint).
    Vegas,
    /// CUBIC (extension).
    Cubic,
    /// BBR (extension; the paper flags its evaluation as "of high
    /// interest").
    Bbr,
}

impl CcKind {
    /// Instantiate the controller.
    pub fn build(self) -> Box<dyn hypatia_transport::CongestionControl> {
        match self {
            CcKind::NewReno => Box::new(NewReno::new()),
            CcKind::Vegas => Box::new(Vegas::new()),
            CcKind::Cubic => Box::new(Cubic::new()),
            CcKind::Bbr => Box::new(Bbr::new()),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::NewReno => "NewReno",
            CcKind::Vegas => "Vegas",
            CcKind::Cubic => "Cubic",
            CcKind::Bbr => "BBR",
        }
    }

    /// Parse a controller name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        [CcKind::NewReno, CcKind::Vegas, CcKind::Cubic, CcKind::Bbr]
            .into_iter()
            .find(|cc| s.eq_ignore_ascii_case(cc.name()))
    }
}

/// Result of a single-flow TCP run.
#[derive(Debug, Clone)]
pub struct TcpSingleResult {
    /// Controller used.
    pub cc: CcKind,
    /// `(time s, cwnd in segments)` on every change.
    pub cwnd_series: Vec<(f64, f64)>,
    /// `(time s, per-packet RTT ms)`.
    pub rtt_series: Vec<(f64, f64)>,
    /// `(time s, throughput Mbit/s)` averaged over 100 ms bins.
    pub throughput_series: Vec<(f64, f64)>,
    /// `(time s, BDP+Q in packets)` from snapshot RTTs (Fig. 4 overlay).
    pub bdp_plus_q_series: Vec<(f64, f64)>,
    /// Bytes delivered in order to the application.
    pub bytes_received: u64,
    /// Fast retransmits / RTO expirations / total retransmissions.
    pub fast_retransmits: u64,
    /// RTO count.
    pub timeouts: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Out-of-order arrivals observed at the sink (reordering indicator).
    pub reordered_arrivals: u64,
    /// Events the simulator processed.
    pub events: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// How the engine executed: shard count, epochs, barriers, lookahead.
    pub engine: EngineReport,
}

impl TcpSingleResult {
    /// Mean goodput over `duration`, Mbit/s.
    pub fn goodput_mbps(&self, duration: SimDuration) -> f64 {
        self.bytes_received as f64 * 8.0 / duration.secs_f64() / 1e6
    }
}

/// Run one TCP flow from `src_name` to `dst_name` for `duration`.
pub fn run(
    scenario: &Scenario,
    src_name: &str,
    dst_name: &str,
    cc: CcKind,
    duration: SimDuration,
) -> Result<TcpSingleResult, UnknownCityError> {
    let src = scenario.gs_by_name(src_name)?;
    let dst = scenario.gs_by_name(dst_name)?;
    let tcp_cfg = TcpConfig::default();
    let mss_wire = tcp_cfg.mss as u64 + hypatia_netsim::packet::HEADER_BYTES as u64;

    let mut sim = scenario.simulator(vec![src, dst]);
    let sink_idx = sim.add_app(dst, 80, Box::new(TcpSink::new(tcp_cfg.clone())));
    let sender_idx =
        sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp_cfg.clone(), cc.build())));
    let wall_start = std::time::Instant::now();
    sim.run_until(SimTime::ZERO + duration);
    let wall_s = wall_start.elapsed().as_secs_f64();

    let sender: &TcpSender = sim.app_as(sender_idx).expect("sender");
    let sink: &TcpSink = sim.app_as(sink_idx).expect("sink");

    let cwnd_series = sender
        .log
        .cwnd
        .iter()
        .map(|&(t, w)| (t.secs_f64(), w as f64 / tcp_cfg.mss as f64))
        .collect();
    let rtt_series =
        sender.log.rtt_samples.iter().map(|&(t, r)| (t.secs_f64(), r.secs_f64() * 1e3)).collect();

    // BDP+Q from snapshot RTTs: rate × RTT / wire-segment-size + queue.
    let rate_bps = scenario.sim_config.link_rate.bps() as f64;
    let q = scenario.sim_config.queue_packets as f64;
    let mut bdp_plus_q_series = Vec::new();
    for t in
        TimeSteps::new(SimTime::ZERO, SimTime::ZERO + duration, scenario.sim_config.fstate_step)
    {
        let state = compute_forwarding_state(&scenario.constellation, t, &[dst]);
        if let Some(d) = state.distance(src, dst) {
            let rtt_s = 2.0 * d.secs_f64();
            let bdp_packets = rate_bps * rtt_s / 8.0 / mss_wire as f64;
            bdp_plus_q_series.push((t.secs_f64(), bdp_packets + q));
        } else {
            bdp_plus_q_series.push((t.secs_f64(), f64::NAN));
        }
    }

    Ok(TcpSingleResult {
        cc,
        cwnd_series,
        rtt_series,
        throughput_series: sink.throughput_series_mbps(),
        bdp_plus_q_series,
        bytes_received: sink.bytes_received(),
        fast_retransmits: sender.log.fast_retransmits,
        timeouts: sender.log.timeouts,
        retransmits: sender.log.retransmits,
        reordered_arrivals: sink.ooo_arrivals,
        events: sim.stats.events,
        wall_s,
        engine: sim.engine_report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ConstellationChoice, ScenarioBuilder};
    use hypatia_constellation::ground::GroundStation;

    fn scenario() -> Scenario {
        ScenarioBuilder::new(ConstellationChoice::KuiperK1)
            .ground_stations(vec![
                GroundStation::new("Istanbul", 41.0082, 28.9784),
                GroundStation::new("Nairobi", -1.2921, 36.8219),
            ])
            .build()
    }

    #[test]
    fn newreno_run_produces_all_series() {
        let s = scenario();
        let d = SimDuration::from_secs(15);
        let r = run(&s, "Istanbul", "Nairobi", CcKind::NewReno, d).expect("known cities");
        assert!(!r.cwnd_series.is_empty());
        assert!(!r.rtt_series.is_empty());
        assert!(!r.throughput_series.is_empty());
        assert_eq!(r.bdp_plus_q_series.len(), 150, "100 ms steps over 15 s");
        assert!(r.goodput_mbps(d) > 3.0, "goodput {}", r.goodput_mbps(d));
        // BDP+Q for a ~55 ms RTT at 10 Mbps with 1440 B wire segments is
        // roughly 100 + 48 packets; sanity-check the overlay magnitude.
        let (_, b) = r.bdp_plus_q_series[0];
        assert!((100.0..200.0).contains(&b), "BDP+Q {b}");
    }

    #[test]
    fn cwnd_oscillates_between_drops() {
        let s = scenario();
        let r = run(&s, "Istanbul", "Nairobi", CcKind::NewReno, SimDuration::from_secs(30))
            .expect("known cities");
        assert!(r.fast_retransmits > 0, "a 10 Mbps bottleneck must drop eventually");
        let max_cwnd = r.cwnd_series.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        let min_after_peak = r
            .cwnd_series
            .iter()
            .skip_while(|&&(_, w)| w < max_cwnd * 0.9)
            .map(|&(_, w)| w)
            .fold(f64::INFINITY, f64::min);
        assert!(min_after_peak < max_cwnd * 0.7, "no multiplicative decrease seen");
    }

    #[test]
    fn vegas_runs_with_low_loss() {
        let s = scenario();
        let d = SimDuration::from_secs(15);
        let r = run(&s, "Istanbul", "Nairobi", CcKind::Vegas, d).expect("known cities");
        assert!(r.goodput_mbps(d) > 1.0, "Vegas goodput {}", r.goodput_mbps(d));
        assert!(
            r.retransmits <= 20,
            "Vegas should keep queues nearly empty, {} retransmits",
            r.retransmits
        );
    }

    #[test]
    fn bbr_runs_and_fills_the_path() {
        let s = scenario();
        let d = SimDuration::from_secs(15);
        let r = run(&s, "Istanbul", "Nairobi", CcKind::Bbr, d).expect("known cities");
        assert!(r.goodput_mbps(d) > 3.0, "BBR goodput {}", r.goodput_mbps(d));
        assert_eq!(r.cc.name(), "BBR");
    }

    #[test]
    fn cubic_runs() {
        let s = scenario();
        let d = SimDuration::from_secs(10);
        let r = run(&s, "Istanbul", "Nairobi", CcKind::Cubic, d).expect("known cities");
        assert!(r.goodput_mbps(d) > 2.0);
        assert_eq!(r.cc.name(), "Cubic");
    }
}
