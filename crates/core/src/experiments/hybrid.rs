//! Extension — hybrid fluid/packet simulation of bulk traffic.
//!
//! Packet-level simulation pays an event per packet per hop; at hundreds
//! of thousands of bulk flows that is what limits scale (see
//! [`flow_scaling`](crate::experiments::flow_scaling)). The fluid
//! alternative models each long-lived flow as a rate assigned by a
//! max-min fair (water-filling) solver over the current forwarding state
//! and integrates delivered bytes analytically between re-solves
//! ([`hypatia_netsim::fluid`]). This study runs the same gravity-drawn
//! bulk workload in all three [`SimMode`]s and measures the trade:
//!
//! * events per wall-clock second (the speedup fluid modelling buys);
//! * network-wide goodput — packet-delivered payload plus analytically
//!   delivered fluid bytes — which must agree across modes within a
//!   small discretization tolerance;
//! * Jain fairness over per-flow delivered bytes (packet sinks and the
//!   fluid solver's per-flow integrals merged into one vector).
//!
//! A packet-level ping control overlay runs in every mode: in hybrid
//! mode the residual coupling (fluid load subtracted from link capacity)
//! is what the control traffic experiences, so its RTTs see the bulk
//! load without simulating a single bulk packet. Flows whose demand is
//! below the classification threshold stay packet-level even in
//! fluid/hybrid mode. Everything is deterministic in (spec, seed) and
//! bit-identical at any `sim_shards`.

use crate::experiments::flow_scaling::jain_index;
use crate::scenario::Scenario;
use hypatia_constellation::ground::gravity_pairs;
use hypatia_constellation::NodeId;
use hypatia_netsim::apps::PingApp;
use hypatia_netsim::{BulkUdpSink, BulkUdpSource, EngineReport, FlowId, SimMode};
use hypatia_util::{DataRate, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::time::Instant;

/// One measured point of the mode comparison.
#[derive(Debug, Clone)]
pub struct HybridPoint {
    /// Offered bulk flow count.
    pub flows: u64,
    /// Simulation mode the point ran under.
    pub mode: SimMode,
    /// Events processed (packet events plus fluid boundary events).
    pub events: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// Simulator throughput, events per wall-clock second.
    pub events_per_sec: f64,
    /// Network-wide goodput, Gbit/s: packet payload delivered plus fluid
    /// bytes delivered analytically.
    pub goodput_gbps: f64,
    /// Jain fairness index over per-flow delivered bytes, packet and
    /// fluid flows merged.
    pub jain: f64,
    /// Bulk flows the classifier sent to the fluid solver.
    pub fluid_flows: u64,
    /// Times the max-min solver re-ran (forwarding swaps, fault updates,
    /// flow boundaries).
    pub fluid_resolves: u64,
    /// Ping RTT samples from the control overlay (present in every mode).
    pub ping_rtts: u64,
    /// How the engine executed: shard count, epochs, barriers, lookahead.
    pub engine: EngineReport,
}

/// Run one point: `flows` gravity-drawn bulk UDP flows at
/// `per_flow_rate` each, classified packet vs fluid by
/// `fluid_threshold` (flows with demand below the threshold stay
/// packet-level; in [`SimMode::Packet`] everything does), plus a
/// packet-level ping control overlay, for `virtual_duration` simulated
/// seconds.
pub fn run_hybrid_point(
    scenario: &Scenario,
    flows: u64,
    mode: SimMode,
    per_flow_rate: DataRate,
    fluid_threshold: DataRate,
    virtual_duration: SimDuration,
    seed: u64,
) -> HybridPoint {
    let mut scenario = scenario.clone();
    scenario.sim_config = scenario.sim_config.clone().with_sim_mode(mode);

    let cities = scenario.constellation.num_ground_stations();
    let pairs = gravity_pairs(cities, flows as usize, seed);
    let stop = SimTime::ZERO + virtual_duration;

    let mut dests: Vec<_> = (0..cities).map(|i| scenario.gs(i)).collect();
    dests.sort_unstable_by_key(|n| n.0);
    let mut sim = scenario.simulator(dests);

    // The control overlay: one ping source between the two largest
    // metros, identical in every mode — control traffic never leaves the
    // packet level.
    let ping_app = sim.add_app(
        scenario.gs(0),
        100,
        Box::new(PingApp::new(scenario.gs(1), SimDuration::from_millis(100), stop)),
    );

    // Classify: bulk flows go fluid when the mode allows it and their
    // demand clears the threshold; everything else is simulated
    // packet-by-packet through arena flow tables (same port-recycling
    // scheme as `flow_scaling::plan`).
    let to_fluid = mode != SimMode::Packet && per_flow_rate >= fluid_threshold;
    let mut fluid_installed = 0u64;
    let mut sinks: BTreeMap<u32, (Vec<u16>, Vec<u32>)> = BTreeMap::new();
    let mut sources: BTreeMap<u32, Vec<(u32, NodeId, u16, u16)>> = BTreeMap::new();
    for (i, &(s, d)) in pairs.iter().enumerate() {
        let (src, dst) = (scenario.gs(s), scenario.gs(d));
        if to_fluid {
            sim.add_fluid_flow(i as u32, src, dst, per_flow_rate, 1440, stop);
            fluid_installed += 1;
            continue;
        }
        let sink = sinks.entry(dst.0).or_default();
        let dst_port = 40_000 + (sink.1.len() % 20_000) as u16;
        sink.0.push(dst_port);
        sink.1.push(i as u32);
        let list = sources.entry(src.0).or_default();
        let src_port = 20_000 + (list.len() % 20_000) as u16;
        list.push((i as u32, dst, src_port, dst_port));
    }
    let mut sink_apps = Vec::new();
    for (node, (mut ports, flow_list)) in sinks {
        ports.sort_unstable();
        ports.dedup();
        sink_apps.push(sim.add_app_multi(
            NodeId(node),
            &ports,
            Box::new(BulkUdpSink::new(flow_list)),
        ));
    }
    for (node, list) in sources {
        let mut table = BulkUdpSource::new(per_flow_rate, 1440, stop);
        for &(flow, dst, src_port, dst_port) in &list {
            table.push(FlowId(flow), dst, src_port, dst_port);
        }
        let mut ports = table.src_ports().to_vec();
        ports.sort_unstable();
        ports.dedup();
        sim.add_app_multi(NodeId(node), &ports, Box::new(table));
    }

    let wall_start = Instant::now();
    sim.run_until(stop);
    let wall_s = wall_start.elapsed().as_secs_f64();

    let mut per_flow = vec![0.0f64; flows as usize];
    for idx in sink_apps {
        let sink: &BulkUdpSink = sim.app_as(idx).expect("bulk UDP sink");
        for (flow, bytes) in sink.per_flow_bytes() {
            per_flow[flow.0 as usize] = bytes as f64;
        }
    }
    if let Some(fluid) = sim.fluid() {
        for (flow, bytes) in fluid.per_flow_payload_bytes() {
            per_flow[flow as usize] = bytes;
        }
    }

    let ping: &PingApp = sim.app_as(ping_app).expect("ping overlay");
    let ping_rtts = ping.rtts().len() as u64;
    let delivered = sim.stats.payload_bytes_delivered + sim.stats.fluid_bytes_delivered;
    let goodput_gbps = delivered as f64 * 8.0 / virtual_duration.secs_f64() / 1e9;
    HybridPoint {
        flows,
        mode,
        events: sim.stats.events,
        wall_s,
        events_per_sec: if wall_s > 0.0 { sim.stats.events as f64 / wall_s } else { 0.0 },
        goodput_gbps,
        jain: jain_index(&per_flow),
        fluid_flows: fluid_installed,
        fluid_resolves: sim.stats.fluid_resolves,
        ping_rtts,
        engine: sim.engine_report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ConstellationChoice, ScenarioBuilder};

    fn scenario() -> Scenario {
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(10).build()
    }

    // 64 kbps × 400 flows keeps every 10 Mbps GSL unbottlenecked, so the
    // packet reference delivers (nearly) everything and the comparison
    // measures discretization bias, not queue-drop unfairness.
    fn point(s: &Scenario, mode: SimMode, threshold_kbps: u64) -> HybridPoint {
        run_hybrid_point(
            s,
            400,
            mode,
            DataRate::from_kbps(64),
            DataRate::from_kbps(threshold_kbps),
            SimDuration::from_secs(2),
            7,
        )
    }

    /// The differential acceptance gate: the hybrid run must agree with
    /// the pure-packet reference on goodput (within the discretization
    /// tolerance) and fairness, while processing far fewer events.
    #[test]
    fn hybrid_matches_packet_goodput_with_far_fewer_events() {
        let s = scenario();
        let packet = point(&s, SimMode::Packet, 0);
        let hybrid = point(&s, SimMode::Hybrid, 0);

        assert_eq!(packet.fluid_flows, 0);
        assert_eq!(hybrid.fluid_flows, 400);
        assert!(hybrid.fluid_resolves > 0);
        assert!(packet.goodput_gbps > 0.0);
        let rel = (hybrid.goodput_gbps - packet.goodput_gbps).abs() / packet.goodput_gbps;
        assert!(rel <= 0.05, "goodput diverged by {:.2}% ", rel * 100.0);
        assert!(
            (hybrid.jain - packet.jain).abs() <= 0.05,
            "jain {} vs {}",
            hybrid.jain,
            packet.jain
        );
        assert!(
            hybrid.events * 5 <= packet.events,
            "hybrid {} events vs packet {} — less than 5x fewer",
            hybrid.events,
            packet.events
        );
        // The control overlay runs at packet level in both modes.
        assert!(packet.ping_rtts > 0);
        assert!(hybrid.ping_rtts > 0);
    }

    /// Pure-fluid and hybrid runs are bit-identical across shard counts.
    #[test]
    fn hybrid_points_are_bit_identical_across_shards() {
        let base = scenario();
        let reference = point(&base, SimMode::Hybrid, 0);
        for shards in [2usize, 4] {
            let mut s = base.clone();
            s.sim_config.sim_shards = shards;
            let got = point(&s, SimMode::Hybrid, 0);
            assert_eq!(reference.events, got.events, "shards={shards}");
            assert_eq!(reference.goodput_gbps, got.goodput_gbps, "shards={shards}");
            assert_eq!(reference.jain, got.jain, "shards={shards}");
            assert_eq!(reference.ping_rtts, got.ping_rtts, "shards={shards}");
        }
    }

    /// A threshold above every flow's demand keeps the whole workload
    /// packet-level: the hybrid run then reproduces the packet reference
    /// exactly (the solver runs but carries no load).
    #[test]
    fn threshold_keeps_short_flows_packet_level() {
        let s = scenario();
        let packet = point(&s, SimMode::Packet, 0);
        let gated = point(&s, SimMode::Hybrid, 128);
        assert_eq!(gated.fluid_flows, 0);
        assert_eq!(gated.events, packet.events);
        assert_eq!(gated.goodput_gbps, packet.goodput_gbps);
        assert_eq!(gated.jain, packet.jain);
    }
}
