//! Figs. 16–19 (Appendix A) — ISL vs bent-pipe connectivity.
//!
//! Paris→Moscow over Kuiper K1 in two configurations: (a) the standard
//! constellation with ISLs; (b) an ISL-less constellation where long-haul
//! connectivity "bends" through a grid of candidate ground-station relays.
//! Reproduces the paper's observations: bent-pipe RTT is higher (typically
//! ~5 ms); TCP over bent-pipe behaves differently because data and ACKs
//! share each satellite's single GSL device queue.

use crate::experiments::tcp_single::CcKind;
use crate::scenario::Scenario;
use hypatia_constellation::ground::GroundStation;
use hypatia_constellation::relays::bent_pipe_ground_segment;
use hypatia_constellation::NodeId;
use hypatia_netsim::EngineReport;
use hypatia_routing::forwarding::compute_forwarding_state;
use hypatia_transport::{TcpConfig, TcpSender, TcpSink};
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};
use std::sync::Arc;

/// Parameters for the bent-pipe comparison.
#[derive(Debug, Clone)]
pub struct BentPipeConfig {
    /// Horizon (paper: 200 s).
    pub duration: SimDuration,
    /// Relay grid spacing, degrees (paper shows a few-degree grid).
    pub relay_spacing_deg: f64,
    /// Grid margin beyond the endpoints' bounding box, degrees.
    pub relay_margin_deg: f64,
}

impl Default for BentPipeConfig {
    fn default() -> Self {
        BentPipeConfig {
            duration: SimDuration::from_secs(200),
            relay_spacing_deg: 3.0,
            relay_margin_deg: 3.0,
        }
    }
}

/// Result for one configuration (ISL or bent-pipe).
#[derive(Debug, Clone)]
pub struct BentPipeLeg {
    /// Configuration label.
    pub label: &'static str,
    /// `(t s, computed RTT ms; NaN when disconnected)` at 100 ms steps.
    pub computed_rtt_series: Vec<(f64, f64)>,
    /// `(t s, TCP-estimated RTT ms)` per ACK.
    pub tcp_rtt_series: Vec<(f64, f64)>,
    /// `(t s, cwnd segments)`.
    pub cwnd_series: Vec<(f64, f64)>,
    /// `(t s, throughput Mbit/s)` in 100 ms bins.
    pub throughput_series: Vec<(f64, f64)>,
    /// Path (node ids) at t = 0.
    pub path_t0: Option<Vec<NodeId>>,
    /// Bytes delivered.
    pub bytes_received: u64,
    /// Mean computed RTT, ms (over connected steps).
    pub mean_computed_rtt_ms: f64,
    /// Events the simulator processed.
    pub events: u64,
    /// Wall-clock seconds the simulation took.
    pub wall_s: f64,
    /// How the engine executed: shard count, epochs, barriers, lookahead.
    pub engine: EngineReport,
}

/// The two legs, ready for comparison.
#[derive(Debug, Clone)]
pub struct BentPipeResult {
    /// With inter-satellite links.
    pub isl: BentPipeLeg,
    /// Bent-pipe through ground relays.
    pub bent_pipe: BentPipeLeg,
}

fn run_leg(
    scenario: &Scenario,
    label: &'static str,
    src: NodeId,
    dst: NodeId,
    duration: SimDuration,
) -> BentPipeLeg {
    // Computed RTT series (no traffic).
    let mut computed = Vec::new();
    let mut sum = 0.0;
    let mut connected = 0usize;
    for t in
        TimeSteps::new(SimTime::ZERO, SimTime::ZERO + duration, scenario.sim_config.fstate_step)
    {
        let state = compute_forwarding_state(&scenario.constellation, t, &[dst]);
        let ms = state.distance(src, dst).map_or(f64::NAN, |d| 2.0 * d.secs_f64() * 1e3);
        if ms.is_finite() {
            sum += ms;
            connected += 1;
        }
        computed.push((t.secs_f64(), ms));
    }
    let path_t0 =
        compute_forwarding_state(&scenario.constellation, SimTime::ZERO, &[dst]).path(src, dst);

    // TCP leg.
    let mut sim = scenario.simulator(vec![src, dst]);
    let cfg = TcpConfig::default();
    let sink_idx = sim.add_app(dst, 80, Box::new(TcpSink::new(cfg.clone())));
    let sender_idx = sim.add_app(
        src,
        70,
        Box::new(TcpSender::new(dst, 80, cfg.clone(), CcKind::NewReno.build())),
    );
    let wall_start = std::time::Instant::now();
    sim.run_until(SimTime::ZERO + duration);
    let wall_s = wall_start.elapsed().as_secs_f64();
    let sender: &TcpSender = sim.app_as(sender_idx).expect("sender");
    let sink: &TcpSink = sim.app_as(sink_idx).expect("sink");

    BentPipeLeg {
        label,
        computed_rtt_series: computed,
        tcp_rtt_series: sender
            .log
            .rtt_samples
            .iter()
            .map(|&(t, r)| (t.secs_f64(), r.secs_f64() * 1e3))
            .collect(),
        cwnd_series: sender
            .log
            .cwnd
            .iter()
            .map(|&(t, w)| (t.secs_f64(), w as f64 / cfg.mss as f64))
            .collect(),
        throughput_series: sink.throughput_series_mbps(),
        path_t0,
        bytes_received: sink.bytes_received(),
        mean_computed_rtt_ms: if connected > 0 { sum / connected as f64 } else { f64::NAN },
        events: sim.stats.events,
        wall_s,
        engine: sim.engine_report(),
    }
}

/// Run the full comparison between `src_city` and `dst_city` (defaults in
/// the paper: Paris and Moscow) on Kuiper K1.
pub fn run(
    src_city: GroundStation,
    dst_city: GroundStation,
    cfg: &BentPipeConfig,
) -> BentPipeResult {
    use crate::scenario::ConstellationChoice;

    // Leg 1: standard ISL constellation, endpoints only.
    let isl_scenario = crate::scenario::Scenario {
        constellation: Arc::new(
            ConstellationChoice::KuiperK1.build(vec![src_city.clone(), dst_city.clone()]),
        ),
        sim_config: hypatia_netsim::SimConfig::default(),
    };
    let isl = run_leg(&isl_scenario, "ISL", isl_scenario.gs(0), isl_scenario.gs(1), cfg.duration);

    // Leg 2: no ISLs; add the relay grid.
    let ground =
        bent_pipe_ground_segment(src_city, dst_city, cfg.relay_spacing_deg, cfg.relay_margin_deg);
    let bp_scenario = crate::scenario::Scenario {
        constellation: Arc::new(ConstellationChoice::KuiperK1BentPipe.build(ground)),
        sim_config: hypatia_netsim::SimConfig::default(),
    };
    let bent_pipe =
        run_leg(&bp_scenario, "bent-pipe", bp_scenario.gs(0), bp_scenario.gs(1), cfg.duration);

    BentPipeResult { isl, bent_pipe }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paris() -> GroundStation {
        GroundStation::new("Paris", 48.8566, 2.3522)
    }
    fn moscow() -> GroundStation {
        GroundStation::new("Moscow", 55.7558, 37.6173)
    }

    fn quick() -> BentPipeResult {
        run(
            paris(),
            moscow(),
            &BentPipeConfig {
                duration: SimDuration::from_secs(10),
                relay_spacing_deg: 4.0,
                relay_margin_deg: 2.0,
            },
        )
    }

    #[test]
    fn bent_pipe_rtt_exceeds_isl_rtt() {
        let r = quick();
        assert!(
            r.bent_pipe.mean_computed_rtt_ms > r.isl.mean_computed_rtt_ms,
            "bent-pipe {} ms vs ISL {} ms",
            r.bent_pipe.mean_computed_rtt_ms,
            r.isl.mean_computed_rtt_ms
        );
        // The paper reports a typical gap of ~5 ms; allow a broad band but
        // require the same order of magnitude.
        let gap = r.bent_pipe.mean_computed_rtt_ms - r.isl.mean_computed_rtt_ms;
        assert!((0.5..40.0).contains(&gap), "gap {gap} ms");
    }

    #[test]
    fn isl_path_uses_satellites_only_in_the_middle() {
        let r = quick();
        let path = r.isl.path_t0.as_ref().expect("ISL path at t=0");
        // GS, satellites..., GS: exactly two GS nodes (1156 satellites in K1).
        let gs_nodes = path.iter().filter(|n| n.0 >= 1156).count();
        assert_eq!(gs_nodes, 2);
    }

    #[test]
    fn bent_pipe_path_alternates_through_relays() {
        let r = quick();
        let path = r.bent_pipe.path_t0.as_ref().expect("bent-pipe path at t=0");
        // Without ISLs no two satellites can be adjacent.
        for w in path.windows(2) {
            let both_sats = w[0].0 < 1156 && w[1].0 < 1156;
            assert!(!both_sats, "adjacent satellites {w:?} without ISLs");
        }
        // It must use at least one intermediate GS relay (> 2 GS nodes).
        let gs_nodes = path.iter().filter(|n| n.0 >= 1156).count();
        assert!(gs_nodes > 2, "expected relays in {path:?}");
    }

    #[test]
    fn both_legs_deliver_data() {
        let r = quick();
        assert!(r.isl.bytes_received > 500_000, "ISL bytes {}", r.isl.bytes_received);
        assert!(
            r.bent_pipe.bytes_received > 200_000,
            "bent-pipe bytes {}",
            r.bent_pipe.bytes_received
        );
        // Bent-pipe achieves a modestly lower rate (paper Fig. 19c).
        assert!(r.bent_pipe.bytes_received <= r.isl.bytes_received);
    }
}
