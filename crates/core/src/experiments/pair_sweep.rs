//! Figs. 6, 7, 8 — constellation-wide per-pair RTT and path statistics.
//!
//! Tracks every GS pair (end-points ≥ 500 km apart, per the paper) across
//! the simulation horizon at the forwarding granularity, recording RTT
//! extremes, path changes, and hop-count extremes. One sweep feeds three
//! figures:
//!
//! * Fig. 6 — ECDF of max-RTT / geodesic-RTT;
//! * Fig. 7 — ECDFs of max RTT, max−min RTT, max/min RTT;
//! * Fig. 8 — ECDFs of path changes, hop-count difference and ratio.

use hypatia_constellation::Constellation;
use hypatia_routing::incremental::RoutingConfig;
use hypatia_routing::parallel::sweep_forwarding_states_with;
use hypatia_routing::path::PairTracker;
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct PairSweepConfig {
    /// Horizon (paper: 200 s).
    pub duration: SimDuration,
    /// Snapshot granularity (paper: 100 ms).
    pub step: SimDuration,
    /// Exclude pairs closer than this (paper: 500 km).
    pub min_pair_distance_km: f64,
    /// Worker threads for the snapshot-routing pipeline (0 = all cores,
    /// 1 = serial). Results are bit-identical for any value — time-steps
    /// are independent and consumed in order.
    pub threads: usize,
    /// Forwarding-state recomputation strategy (full Dijkstra vs.
    /// incremental repair). Results are byte-identical for every choice.
    pub routing: RoutingConfig,
}

impl Default for PairSweepConfig {
    fn default() -> Self {
        PairSweepConfig {
            duration: SimDuration::from_secs(200),
            step: SimDuration::from_millis(100),
            min_pair_distance_km: 500.0,
            threads: 0,
            routing: RoutingConfig::default(),
        }
    }
}

/// Per-pair sweep outcome.
#[derive(Debug, Clone)]
pub struct PairStats {
    /// Source GS index.
    pub src_gs: usize,
    /// Destination GS index.
    pub dst_gs: usize,
    /// Geodesic RTT, ms.
    pub geodesic_rtt_ms: f64,
    /// Max snapshot RTT over the horizon, ms (NaN if never connected).
    pub max_rtt_ms: f64,
    /// Min snapshot RTT, ms (NaN if never connected).
    pub min_rtt_ms: f64,
    /// Paper-criterion path changes.
    pub path_changes: usize,
    /// Hop-count extremes (edges), 0 when never connected.
    pub min_hops: usize,
    /// Max hop count.
    pub max_hops: usize,
    /// Steps with no path.
    pub disconnected_steps: usize,
    /// Steps observed.
    pub steps: usize,
}

impl PairStats {
    /// `max RTT / geodesic RTT` (Fig. 6's metric).
    pub fn rtt_stretch(&self) -> f64 {
        self.max_rtt_ms / self.geodesic_rtt_ms
    }

    /// `max − min` RTT, ms.
    pub fn rtt_delta_ms(&self) -> f64 {
        self.max_rtt_ms - self.min_rtt_ms
    }

    /// `max / min` RTT.
    pub fn rtt_ratio(&self) -> f64 {
        self.max_rtt_ms / self.min_rtt_ms
    }

    /// `max − min` hop count.
    pub fn hop_delta(&self) -> usize {
        self.max_hops.saturating_sub(self.min_hops)
    }

    /// `max / min` hop count (NaN when never connected).
    pub fn hop_ratio(&self) -> f64 {
        if self.min_hops == 0 {
            f64::NAN
        } else {
            self.max_hops as f64 / self.min_hops as f64
        }
    }
}

/// Run the sweep over all qualifying unordered GS pairs.
pub fn run(constellation: &Constellation, cfg: &PairSweepConfig) -> Vec<PairStats> {
    let n = constellation.num_ground_stations();
    let dests: Vec<_> = (0..n).map(|i| constellation.gs_node(i)).collect();

    // Qualifying pairs and their trackers.
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let gi = &constellation.ground_stations[i];
            let gj = &constellation.ground_stations[j];
            if gi.distance_km(gj) >= cfg.min_pair_distance_km {
                let tracker =
                    PairTracker::new(constellation.gs_node(i), constellation.gs_node(j), false);
                pairs.push((i, j, tracker));
            }
        }
    }

    // Snapshot + per-destination trees fan out across worker threads; the
    // stateful trackers consume the states strictly in time order, so the
    // result is identical to the serial loop for any thread count.
    let times: Vec<SimTime> =
        TimeSteps::new(SimTime::ZERO, SimTime::ZERO + cfg.duration, cfg.step).collect();
    sweep_forwarding_states_with(
        constellation,
        &times,
        &dests,
        cfg.threads,
        cfg.routing,
        |_, state| {
            for (_, _, tracker) in pairs.iter_mut() {
                tracker.observe(constellation, &state);
            }
        },
    );

    pairs
        .into_iter()
        .map(|(i, j, tr)| {
            let geodesic = constellation.ground_stations[i]
                .geodesic_rtt(&constellation.ground_stations[j])
                .secs_f64()
                * 1e3;
            PairStats {
                src_gs: i,
                dst_gs: j,
                geodesic_rtt_ms: geodesic,
                max_rtt_ms: tr.max_rtt.map_or(f64::NAN, |r| r.secs_f64() * 1e3),
                min_rtt_ms: tr.min_rtt.map_or(f64::NAN, |r| r.secs_f64() * 1e3),
                path_changes: tr.path_changes,
                min_hops: tr.min_hops.unwrap_or(0),
                max_hops: tr.max_hops.unwrap_or(0),
                disconnected_steps: tr.disconnected_steps,
                steps: tr.steps,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::top_cities;
    use hypatia_constellation::presets;

    fn small_sweep(n_cities: usize, secs: u64, step_s: u64) -> Vec<PairStats> {
        let c = presets::kuiper_k1(top_cities(n_cities));
        run(
            &c,
            &PairSweepConfig {
                duration: SimDuration::from_secs(secs),
                step: SimDuration::from_secs(step_s),
                ..PairSweepConfig::default()
            },
        )
    }

    #[test]
    fn sweep_covers_qualifying_pairs() {
        let stats = small_sweep(8, 20, 2);
        // 8 cities → at most 28 pairs; all the top-8 are > 500 km apart.
        assert_eq!(stats.len(), 28);
        for s in &stats {
            assert_eq!(s.steps, 10);
            assert!(s.geodesic_rtt_ms > 0.0);
        }
    }

    #[test]
    fn rtt_stretch_at_least_one() {
        // The satellite path can never beat the geodesic.
        for s in small_sweep(6, 10, 2) {
            if s.max_rtt_ms.is_finite() {
                assert!(
                    s.rtt_stretch() >= 1.0,
                    "pair {}-{} stretch {}",
                    s.src_gs,
                    s.dst_gs,
                    s.rtt_stretch()
                );
            }
        }
    }

    #[test]
    fn extremes_are_ordered() {
        for s in small_sweep(6, 20, 2) {
            if s.max_rtt_ms.is_finite() {
                assert!(s.max_rtt_ms >= s.min_rtt_ms);
                assert!(s.max_hops >= s.min_hops);
                assert!(s.min_hops >= 2, "GS–GS needs ≥2 edges");
                assert!(s.rtt_ratio() >= 1.0);
            }
        }
    }

    #[test]
    fn most_kuiper_pairs_connected_at_mid_latitudes() {
        let stats = small_sweep(8, 10, 2);
        let connected = stats.iter().filter(|s| s.disconnected_steps == 0).count();
        assert!(
            connected as f64 >= stats.len() as f64 * 0.8,
            "{connected}/{} pairs connected",
            stats.len()
        );
    }

    /// The headline determinism guarantee of the parallel pipeline: the
    /// sweep's output is byte-identical to the serial sweep on Kuiper K1,
    /// independent of the worker-thread count.
    #[test]
    fn parallel_sweep_bit_identical_to_serial() {
        let c = presets::kuiper_k1(top_cities(8));
        let sweep = |threads: usize| {
            let stats = run(
                &c,
                &PairSweepConfig {
                    duration: SimDuration::from_secs(10),
                    step: SimDuration::from_secs(2),
                    threads,
                    ..PairSweepConfig::default()
                },
            );
            // Debug formatting captures every field bit-for-bit (NaN
            // included, which `==` on f64 would miss).
            format!("{stats:?}")
        };
        let serial = sweep(1);
        for threads in [2, 4, 8] {
            assert_eq!(serial, sweep(threads), "thread count {threads} diverged");
        }
    }

    #[test]
    fn nearby_pairs_excluded() {
        // Guangzhou–Shenzhen–Dongguan–Foshan cluster is within 500 km; with
        // the top 100 cities the pair count must be well below C(100,2).
        let c = presets::kuiper_k1(top_cities(100));
        let cfg = PairSweepConfig {
            duration: SimDuration::from_secs(2),
            step: SimDuration::from_secs(2),
            ..PairSweepConfig::default()
        };
        let stats = run(&c, &cfg);
        assert!(stats.len() < 4950, "got {}", stats.len());
        assert!(stats.len() > 4700, "got {}", stats.len());
    }
}
