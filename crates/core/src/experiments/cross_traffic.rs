//! Figs. 10, 14, 15 — cross-traffic, unused bandwidth, and utilization.
//!
//! Long-running TCP flows between a random permutation of the ground
//! stations (the paper's §5.4 workload). For an observed pair, computes
//! the per-second "unused bandwidth": path capacity minus the utilization
//! of the most congested on-path link. The same run yields the
//! constellation-wide ISL utilization that Figs. 14/15 visualize.
//!
//! Simplification vs the paper: the paper removes permutation pairs that
//! ever share a source/destination *satellite* with the observed pair; we
//! remove pairs that share a *ground station* with it. Both serve the same
//! purpose — keeping the observed pair's first and last hop uncongested —
//! and ours is time-invariant, hence reproducible independent of geometry.

use crate::scenario::{Scenario, UnknownCityError};
use hypatia_constellation::NodeId;
use hypatia_netsim::Simulator;
use hypatia_routing::forwarding::compute_forwarding_state;
use hypatia_transport::{NewReno, TcpConfig, TcpSender, TcpSink};
use hypatia_util::{SimDuration, SimTime};

/// Parameters for the cross-traffic experiment.
#[derive(Debug, Clone)]
pub struct CrossTrafficConfig {
    /// Horizon (paper: 200 s).
    pub duration: SimDuration,
    /// Permutation seed.
    pub seed: u64,
    /// Freeze the network at t = 0 (the paper's static baseline).
    pub frozen: bool,
    /// Loop-free multipath stretch (None = single shortest path).
    pub multipath_stretch: Option<f64>,
}

impl Default for CrossTrafficConfig {
    fn default() -> Self {
        CrossTrafficConfig {
            duration: SimDuration::from_secs(200),
            seed: 1,
            frozen: false,
            multipath_stretch: None,
        }
    }
}

/// Outcome: the observed pair's bandwidth series plus the simulator (for
/// utilization-map post-processing à la Figs. 14/15).
pub struct CrossTrafficResult {
    /// The simulator after the run (device utilization buckets populated).
    pub sim: Simulator,
    /// `(t s, unused bandwidth Mbit/s)`; NaN when the pair had no path.
    pub unused_bandwidth_series: Vec<(f64, f64)>,
    /// Network-wide goodput, Mbit/s.
    pub total_goodput_mbps: f64,
    /// Number of cross-traffic flows installed.
    pub flows: usize,
    /// Wall-clock seconds the simulation took (event count lives in
    /// `sim.stats.events`).
    pub wall_s: f64,
}

impl CrossTrafficResult {
    /// Fraction of (connected) seconds with more than `frac` of the path
    /// capacity unused — the paper's headline "31% of the time, more than
    /// a third of the capacity is unused" metric.
    pub fn fraction_time_unused_above(&self, frac: f64) -> f64 {
        let cap = self.sim.config().link_rate.mbps_f64();
        let connected: Vec<f64> = self
            .unused_bandwidth_series
            .iter()
            .map(|&(_, u)| u)
            .filter(|u| u.is_finite())
            .collect();
        if connected.is_empty() {
            return 0.0;
        }
        connected.iter().filter(|&&u| u > cap * frac).count() as f64 / connected.len() as f64
    }
}

/// Run cross-traffic on `scenario`, observing `(src_name, dst_name)`.
///
/// The scenario's sim config must have a utilization bucket configured
/// (1 s reproduces the paper's measurement granularity).
pub fn run(
    scenario: &Scenario,
    src_name: &str,
    dst_name: &str,
    cfg: &CrossTrafficConfig,
) -> Result<CrossTrafficResult, UnknownCityError> {
    let bucket = scenario
        .sim_config
        .utilization_bucket
        .expect("cross-traffic needs utilization tracking enabled");
    let observed_src = scenario.gs_by_name(src_name)?;
    let observed_dst = scenario.gs_by_name(dst_name)?;

    // Traffic matrix: permutation pairs, minus those touching the observed
    // pair's ground stations, plus the observed pair itself.
    let mut flows: Vec<(NodeId, NodeId)> = vec![(observed_src, observed_dst)];
    for (i, j) in scenario.permutation_pairs(cfg.seed) {
        let (s, d) = (scenario.gs(i), scenario.gs(j));
        if s != observed_src && s != observed_dst && d != observed_src && d != observed_dst {
            flows.push((s, d));
        }
    }

    let mut dests: Vec<NodeId> = flows.iter().map(|&(_, d)| d).collect();
    dests.extend(flows.iter().map(|&(s, _)| s)); // ACK routing
    dests.sort_unstable_by_key(|n| n.0);
    dests.dedup();

    let mut sim_config = scenario.sim_config.clone();
    if cfg.frozen {
        sim_config.freeze_at_epoch = true;
    }
    sim_config.multipath_stretch = cfg.multipath_stretch;
    let mut sim = Simulator::new(scenario.constellation.clone(), sim_config, dests);

    let tcp_cfg = TcpConfig::default();
    for (i, &(s, d)) in flows.iter().enumerate() {
        let sender_port = 10_000 + i as u16;
        let sink_port = 30_000 + i as u16;
        sim.add_app(d, sink_port, Box::new(TcpSink::new(tcp_cfg.clone())));
        sim.add_app(
            s,
            sender_port,
            Box::new(TcpSender::new(d, sink_port, tcp_cfg.clone(), Box::new(NewReno::new()))),
        );
    }

    let end = SimTime::ZERO + cfg.duration;
    let wall_start = std::time::Instant::now();
    sim.run_until(end);
    let wall_s = wall_start.elapsed().as_secs_f64();

    // Unused bandwidth per bucket for the observed pair: capacity minus the
    // bottleneck utilization of the path in force at each bucket start.
    let cap_mbps = sim.config().link_rate.mbps_f64();
    let buckets = cfg.duration / bucket;
    let mut series = Vec::with_capacity(buckets as usize);
    for k in 0..buckets {
        let t = if cfg.frozen { SimTime::ZERO } else { SimTime::ZERO + bucket * k };
        let state = compute_forwarding_state(&scenario.constellation, t, &[observed_dst]);
        let point = match state.path(observed_src, observed_dst) {
            Some(path) => {
                let worst = sim.path_bottleneck_utilization(&path, k as usize);
                cap_mbps * (1.0 - worst)
            }
            None => f64::NAN,
        };
        series.push(((k * bucket.nanos()) as f64 / 1e9, point));
    }

    let total_goodput_mbps =
        sim.stats.payload_bytes_delivered as f64 * 8.0 / cfg.duration.secs_f64() / 1e6;

    Ok(CrossTrafficResult {
        sim,
        unused_bandwidth_series: series,
        total_goodput_mbps,
        flows: flows.len(),
        wall_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ConstellationChoice, ScenarioBuilder};
    use hypatia_netsim::SimConfig;
    use hypatia_util::DataRate;

    fn scenario(cities: usize) -> Scenario {
        ScenarioBuilder::new(ConstellationChoice::KuiperK1)
            .top_cities(cities)
            .sim_config(
                SimConfig::default()
                    .with_link_rate(DataRate::from_mbps(10))
                    .with_utilization_bucket(SimDuration::from_secs(1)),
            )
            .build()
    }

    fn quick_cfg() -> CrossTrafficConfig {
        CrossTrafficConfig {
            duration: SimDuration::from_secs(10),
            seed: 7,
            frozen: false,
            multipath_stretch: None,
        }
    }

    #[test]
    fn multipath_runs_and_delivers() {
        let s = scenario(10);
        let mut cfg = quick_cfg();
        cfg.multipath_stretch = Some(1.2);
        let r = run(&s, "Tokyo", "Sao Paulo", &cfg).expect("known cities");
        assert!(r.total_goodput_mbps > 5.0, "multipath goodput {}", r.total_goodput_mbps);
    }

    #[test]
    fn observed_pair_series_has_one_point_per_second() {
        let s = scenario(10);
        let r = run(&s, "Tokyo", "Sao Paulo", &quick_cfg()).expect("known cities");
        assert_eq!(r.unused_bandwidth_series.len(), 10);
        for &(_, u) in &r.unused_bandwidth_series {
            assert!(u.is_nan() || (-0.01..=10.01).contains(&u), "unused {u}");
        }
        assert!(r.flows >= 2, "observed + cross flows");
    }

    #[test]
    fn cross_traffic_consumes_bandwidth() {
        let s = scenario(10);
        let r = run(&s, "Tokyo", "Sao Paulo", &quick_cfg()).expect("known cities");
        assert!(r.total_goodput_mbps > 5.0, "goodput {}", r.total_goodput_mbps);
        // Some second must see congestion (unused < capacity).
        let min_unused = r
            .unused_bandwidth_series
            .iter()
            .map(|&(_, u)| u)
            .filter(|u| u.is_finite())
            .fold(f64::INFINITY, f64::min);
        assert!(min_unused < 9.0, "no link ever utilized? min unused {min_unused}");
    }

    #[test]
    fn frozen_baseline_runs() {
        let s = scenario(8);
        let mut cfg = quick_cfg();
        cfg.frozen = true;
        let r = run(&s, "Tokyo", "Sao Paulo", &cfg).expect("known cities");
        assert_eq!(r.sim.stats.forwarding_updates, 0);
        assert_eq!(r.unused_bandwidth_series.len(), 10);
    }

    #[test]
    fn flows_avoid_observed_ground_stations() {
        let s = scenario(10);
        let r = run(&s, "Tokyo", "Sao Paulo", &quick_cfg()).expect("known cities");
        // 10 cities → permutation of 10 minus any pair touching the 2
        // observed GSes, plus the observed flow itself: at most 9.
        assert!(r.flows <= 9, "flows {}", r.flows);
    }

    #[test]
    fn fraction_metric_bounded() {
        let s = scenario(8);
        let r = run(&s, "Tokyo", "Sao Paulo", &quick_cfg()).expect("known cities");
        let f = r.fraction_time_unused_above(1.0 / 3.0);
        assert!((0.0..=1.0).contains(&f));
    }
}
