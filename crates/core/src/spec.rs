//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] captures everything the paper calls an
//! "experiment setup" — constellation, ground segment, GS pairs, horizon,
//! forwarding granularity, line rate, queue size, congestion controller,
//! thread count — as *data* rather than code. Specs round-trip through
//! JSON, so a figure run is reproducible from a file, and the
//! [`runner`](crate::runner) executes any spec by name through one shared
//! driver.
//!
//! Two JSON paths are provided:
//!
//! * [`ExperimentSpec::to_json_string`] / [`ExperimentSpec::from_json`] —
//!   a hand-rolled, schema-stable mapping with precise error messages
//!   (the canonical path, used by the CLI);
//! * plain `serde` derives on every spec type, for embedding specs inside
//!   larger serde documents.

// Spec I/O is a crash-resilience surface: a malformed file must come back
// as a typed SpecError, never a panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::experiments::tcp_single::CcKind;
use crate::scenario::{ConstellationChoice, Scenario, ScenarioBuilder};
use hypatia_constellation::ground::top_cities;
use hypatia_constellation::GroundStation;
use hypatia_fault::{FaultSchedule, FaultSpec, FlapProcess, LinkCut, OutageWindow};
use hypatia_netsim::{SimConfig, SimMode};
use hypatia_routing::incremental::{RoutingConfig, RoutingMode};
use hypatia_util::{DataRate, SimDuration};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Which ground stations the scenario uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroundSegment {
    /// The `n` most populous cities of the embedded dataset.
    TopCities(usize),
    /// An explicit station list.
    Cities(Vec<GroundStation>),
}

impl GroundSegment {
    /// Materialize the station list.
    pub fn stations(&self) -> Vec<GroundStation> {
        match self {
            GroundSegment::TopCities(n) => top_cities(*n),
            GroundSegment::Cities(v) => v.clone(),
        }
    }
}

/// Which source→destination pairs the experiment studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PairSelection {
    /// Explicit `(src city, dst city)` pairs.
    Named(Vec<(String, String)>),
    /// Every unordered GS pair at least this far apart (great-circle km).
    MinDistance {
        /// Minimum pair distance, km.
        km: f64,
    },
    /// The paper's fixed random permutation traffic matrix (seeded by the
    /// spec's `seed`).
    Permutation,
}

impl PairSelection {
    /// The explicit pairs, if this selection names them.
    pub fn named(&self) -> Option<&[(String, String)]> {
        match self {
            PairSelection::Named(v) => Some(v),
            _ => None,
        }
    }
}

/// An experiment-specific parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// A number (integers are stored as f64).
    Num(f64),
    /// A boolean flag.
    Flag(bool),
    /// Free text.
    Text(String),
    /// A list of numbers.
    List(Vec<f64>),
}

/// A malformed spec: bad JSON, a missing/mistyped field, or an unknown
/// `--set` key or value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid experiment spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// A complete, serializable description of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Registry name (e.g. `fig03_rtt_fluctuations`).
    pub experiment: String,
    /// Constellation preset.
    pub constellation: ConstellationChoice,
    /// Ground segment.
    pub ground: GroundSegment,
    /// Pair selection.
    pub pairs: PairSelection,
    /// Simulated horizon.
    pub duration: SimDuration,
    /// Forwarding-state granularity (the paper's Δt).
    pub step: SimDuration,
    /// Uniform line rate (ISLs and GSLs).
    pub line_rate: DataRate,
    /// Drop-tail queue capacity per device, packets.
    pub queue_packets: usize,
    /// Per-device utilization-tracking bucket (None disables tracking).
    pub utilization_bucket: Option<SimDuration>,
    /// Congestion controller for TCP workloads.
    pub cc: CcKind,
    /// Worker threads for snapshot fan-out / forwarding prefetch
    /// (0 = serial; results are bit-identical for any value).
    pub threads: usize,
    /// Seed for randomized pieces (permutation matrix, loss processes).
    pub seed: u64,
    /// Forwarding-state recomputation strategy: full Dijkstra every
    /// snapshot, or incremental repair of the previous snapshot's trees
    /// (the default). Output is byte-identical either way — `full` is the
    /// escape hatch. Default values are omitted from the emitted JSON, so
    /// existing spec files and their artifacts stay byte-identical.
    pub routing_mode: RoutingMode,
    /// Churn fraction (flipped edges / edges) above which incremental
    /// repair falls back to a full recompute.
    pub repair_churn_threshold: f64,
    /// Shard count for the simulator's conservative parallel engine
    /// (1 = the serial reference engine). Results are bit-identical for
    /// any value; the default is omitted from the emitted JSON, so
    /// existing spec files and their artifacts stay byte-identical.
    pub sim_shards: usize,
    /// Simulation mode: pure packet-level (the default), pure fluid, or
    /// hybrid — bulk flows modelled analytically by the max-min fair
    /// fluid solver while short flows and control traffic stay
    /// packet-level. The default is omitted from the emitted JSON, so
    /// existing spec files and their artifacts stay byte-identical.
    pub sim_mode: SimMode,
    /// Per-flow demand threshold (kbps) below which a flow stays
    /// packet-level even in fluid/hybrid mode (0 = experiment default;
    /// omitted from the emitted JSON at 0, keeping existing spec files
    /// byte-identical).
    pub fluid_threshold_kbps: f64,
    /// Offered flow count for traffic-matrix experiments (e.g. the gravity
    /// model of `ext_flow_scaling`). `None` leaves the experiment's own
    /// default in force and is omitted from the emitted JSON, so existing
    /// spec files and their artifacts stay byte-identical.
    pub flows: Option<u64>,
    /// Per-flow trace sampling interval: the packet trace records only
    /// flows whose flow hash is divisible by this (1 = every flow, the
    /// default, omitted from the emitted JSON). Sampled-out records are
    /// counted, and sampling never alters simulation behaviour — only
    /// which trace rows are kept.
    pub trace_sample_every: u64,
    /// Optional fault-injection scenario (None keeps every component up;
    /// the emitted JSON then carries no `faults` key at all, so existing
    /// spec files and their artifacts are byte-identical).
    pub faults: Option<FaultSpec>,
    /// Checkpoint interval in simulated time: each simulation writes a
    /// restartable snapshot under `<out_dir>/checkpoints/` at every
    /// boundary. `None` (the default, omitted from the emitted JSON)
    /// disables checkpointing; snapshots never alter simulation
    /// behaviour — artifacts are byte-identical with or without them.
    pub checkpoint_every: Option<SimDuration>,
    /// Directory of snapshots from a previous (possibly killed) run of the
    /// same spec: each simulation that finds its snapshot there restores
    /// it and replays only the tail. Resume is byte-identical, so the
    /// artifacts match an uninterrupted run exactly. `None` (the default,
    /// omitted from the emitted JSON) starts every simulation from t = 0.
    pub resume_from: Option<String>,
    /// Run conservation audits (packet, per-link byte, queue-occupancy,
    /// and fluid-rate invariants) at every epoch boundary, reporting any
    /// violations in the manifest. Off by default (omitted from the
    /// emitted JSON); auditing never alters simulation behaviour.
    pub audit: bool,
    /// Experiment-specific extras (e.g. `ping_interval_ms`).
    pub params: BTreeMap<String, ParamValue>,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        let sim = SimConfig::default();
        let routing = RoutingConfig::default();
        ExperimentSpec {
            experiment: String::new(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(100),
            pairs: PairSelection::Named(Vec::new()),
            duration: SimDuration::from_secs(200),
            step: sim.fstate_step,
            line_rate: sim.link_rate,
            queue_packets: sim.queue_packets,
            utilization_bucket: None,
            cc: CcKind::NewReno,
            threads: 0,
            seed: 1,
            routing_mode: routing.mode,
            repair_churn_threshold: routing.repair_churn_threshold,
            sim_shards: sim.sim_shards,
            sim_mode: sim.sim_mode,
            fluid_threshold_kbps: 0.0,
            flows: None,
            trace_sample_every: sim.trace_sample_every,
            faults: None,
            checkpoint_every: None,
            resume_from: None,
            audit: false,
            params: BTreeMap::new(),
        }
    }
}

/// Flap process used when a `--set` key configures only one of
/// `mttf`/`mttr`: fail about once an hour, repair in a minute.
const DEFAULT_FLAP: FlapProcess = FlapProcess { mttf_s: 3600.0, mttr_s: 60.0 };

impl ExperimentSpec {
    /// The simulator configuration this spec describes.
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::default()
            .with_link_rate(self.line_rate)
            .with_queue_packets(self.queue_packets)
            .with_fstate_step(self.step);
        if let Some(bucket) = self.utilization_bucket {
            cfg = cfg.with_utilization_bucket(bucket);
        }
        if self.threads > 0 {
            let prefetch = cfg.fstate_prefetch;
            cfg = cfg.with_fstate_prefetch(self.threads, prefetch);
        }
        cfg.with_routing_mode(self.routing_mode)
            .with_repair_churn_threshold(self.repair_churn_threshold)
            .with_sim_shards(self.sim_shards)
            .with_sim_mode(self.sim_mode)
            .with_trace_sampling(self.trace_sample_every)
    }

    /// The routing configuration this spec describes.
    pub fn routing_config(&self) -> RoutingConfig {
        RoutingConfig {
            mode: self.routing_mode,
            repair_churn_threshold: self.repair_churn_threshold,
        }
    }

    /// Assemble the scenario (constellation + ground segment + sim config).
    ///
    /// When the spec carries a fault scenario it is compiled against the
    /// built constellation (horizon = the spec's `duration`) and attached
    /// to the simulator configuration.
    pub fn build_scenario(&self) -> Scenario {
        let mut scenario = ScenarioBuilder::new(self.constellation)
            .ground_stations(self.ground.stations())
            .sim_config(self.sim_config())
            .build();
        if let Some(faults) = &self.faults {
            let schedule = FaultSchedule::compile(faults, &scenario.constellation, self.duration);
            scenario.sim_config.faults = Some(std::sync::Arc::new(schedule));
        }
        scenario
    }

    /// The fault scenario, created fault-free on first access (used by the
    /// fault-related `--set` keys and by experiments that inject faults).
    pub fn faults_mut(&mut self) -> &mut FaultSpec {
        self.faults.get_or_insert_with(FaultSpec::default)
    }

    /// Numeric extra parameter.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.params.get(key) {
            Some(ParamValue::Num(x)) => Some(*x),
            _ => None,
        }
    }

    /// Boolean extra parameter.
    pub fn flag(&self, key: &str) -> Option<bool> {
        match self.params.get(key) {
            Some(ParamValue::Flag(b)) => Some(*b),
            _ => None,
        }
    }

    /// Text extra parameter.
    pub fn text(&self, key: &str) -> Option<&str> {
        match self.params.get(key) {
            Some(ParamValue::Text(s)) => Some(s),
            _ => None,
        }
    }

    /// Numeric-list extra parameter.
    pub fn list(&self, key: &str) -> Option<&[f64]> {
        match self.params.get(key) {
            Some(ParamValue::List(v)) => Some(v),
            _ => None,
        }
    }

    /// Apply one `--set key=value` override.
    ///
    /// Known keys address the common fields (`constellation`, `cities`,
    /// `pairs`, `min_distance_km`, `duration_s`, `step_ms`,
    /// `line_rate_mbps`, `queue_packets`, `utilization_bucket_s`, `cc`,
    /// `threads`, `seed`), the engine (`sim_shards=N` for the sharded
    /// conservative engine, 1 = serial; `sim_mode=packet|fluid|hybrid`
    /// with `fluid_threshold_kbps=X` keeping flows below the threshold
    /// packet-level), the traffic matrix and trace
    /// (`flows=N` offered flows, `trace_sample_every=K` per-flow trace
    /// sampling; both reject 0), the routing strategy
    /// (`routing_mode=full|
    /// incremental`, `repair_churn_threshold`) and the fault scenario
    /// (`fault_seed`,
    /// `sat_outage=SAT:FROM_S:UNTIL_S`, `isl_cut=A-B:FROM_S:UNTIL_S`,
    /// `gsl_weather=GS:FROM_S:UNTIL_S` — each appends a window — plus
    /// `sat_mttf_s`/`sat_mttr_s`/`isl_mttf_s`/`isl_mttr_s` for the flap
    /// processes); any other key lands in `params`, with the value parsed
    /// as bool, number, comma-separated number list, or text — in that
    /// order.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        fn parse_f64(key: &str, value: &str) -> Result<f64, SpecError> {
            value
                .parse::<f64>()
                .map_err(|_| SpecError(format!("{key} expects a number, got {value:?}")))
        }
        fn parse_u64(key: &str, value: &str) -> Result<u64, SpecError> {
            value.parse::<u64>().map_err(|_| {
                SpecError(format!("{key} expects a non-negative integer, got {value:?}"))
            })
        }
        /// Split `TARGET:FROM_S:UNTIL_S`, leaving the target untyped.
        fn parse_window_raw<'v>(
            key: &str,
            value: &'v str,
        ) -> Result<(&'v str, f64, f64), SpecError> {
            let parts: Vec<&str> = value.split(':').collect();
            if parts.len() != 3 {
                return err(format!("{key} expects TARGET:FROM_S:UNTIL_S, got {value:?}"));
            }
            Ok((parts[0], parse_f64(key, parts[1])?, parse_f64(key, parts[2])?))
        }
        fn parse_window(key: &str, value: &str) -> Result<(u32, f64, f64), SpecError> {
            let (target, from_s, until_s) = parse_window_raw(key, value)?;
            Ok((parse_u64(key, target)? as u32, from_s, until_s))
        }
        match key {
            "constellation" => match ConstellationChoice::parse(value) {
                Some(c) => self.constellation = c,
                None => {
                    return err(format!(
                        "unknown constellation {value:?} (expected one of \
                         starlink_s1, kuiper_k1, telesat_t1, kuiper_k1_bent_pipe)"
                    ))
                }
            },
            "cities" => {
                self.ground = GroundSegment::TopCities(parse_u64(key, value)? as usize);
            }
            "pairs" => {
                let mut named = Vec::new();
                for pair in value.split(';').filter(|p| !p.is_empty()) {
                    match pair.split_once(':') {
                        Some((s, d)) => named.push((s.to_string(), d.to_string())),
                        None => {
                            return err(format!("pairs expects src:dst[;src:dst...], got {pair:?}"))
                        }
                    }
                }
                self.pairs = PairSelection::Named(named);
            }
            "min_distance_km" => {
                self.pairs = PairSelection::MinDistance { km: parse_f64(key, value)? };
            }
            "duration_s" => {
                self.duration = SimDuration::from_secs_f64(parse_f64(key, value)?);
            }
            "step_ms" => {
                self.step = SimDuration::from_secs_f64(parse_f64(key, value)? / 1e3);
            }
            "line_rate_mbps" => {
                self.line_rate = DataRate::from_bps((parse_f64(key, value)? * 1e6).round() as u64);
            }
            "queue_packets" => self.queue_packets = parse_u64(key, value)? as usize,
            "utilization_bucket_s" => {
                self.utilization_bucket = if value.eq_ignore_ascii_case("none") {
                    None
                } else {
                    Some(SimDuration::from_secs_f64(parse_f64(key, value)?))
                };
            }
            "cc" => match CcKind::parse(value) {
                Some(cc) => self.cc = cc,
                None => {
                    return err(format!(
                        "unknown congestion controller {value:?} (expected \
                         newreno, vegas, cubic, or bbr)"
                    ))
                }
            },
            "threads" => self.threads = parse_u64(key, value)? as usize,
            "seed" => self.seed = parse_u64(key, value)?,
            "sim_shards" => {
                let n = parse_u64(key, value)? as usize;
                if n == 0 {
                    return err(format!("{key} must be at least 1, got {value}"));
                }
                self.sim_shards = n;
            }
            "sim_mode" => match SimMode::parse(value) {
                Some(m) => self.sim_mode = m,
                None => {
                    return err(format!(
                        "unknown sim mode {value:?} (expected packet, fluid, or hybrid)"
                    ))
                }
            },
            "fluid_threshold_kbps" => {
                let x = parse_f64(key, value)?;
                if x < 0.0 {
                    return err(format!("{key} must be non-negative, got {value}"));
                }
                self.fluid_threshold_kbps = x;
            }
            "flows" => {
                let n = parse_u64(key, value)?;
                if n == 0 {
                    return err(format!("{key} must be at least 1, got {value}"));
                }
                self.flows = Some(n);
            }
            "trace_sample_every" => {
                let n = parse_u64(key, value)?;
                if n == 0 {
                    return err(format!("{key} must be at least 1, got {value}"));
                }
                self.trace_sample_every = n;
            }
            "routing_mode" => match RoutingMode::parse(value) {
                Some(m) => self.routing_mode = m,
                None => {
                    return err(format!(
                        "unknown routing mode {value:?} (expected full or incremental)"
                    ))
                }
            },
            "repair_churn_threshold" => {
                let x = parse_f64(key, value)?;
                if x < 0.0 {
                    return err(format!("{key} must be non-negative, got {value}"));
                }
                self.repair_churn_threshold = x;
            }
            "checkpoint_every_s" => {
                if value.eq_ignore_ascii_case("none") {
                    self.checkpoint_every = None;
                } else {
                    let x = parse_f64(key, value)?;
                    if x <= 0.0 {
                        return err(format!("{key} must be positive, got {value}"));
                    }
                    self.checkpoint_every = Some(SimDuration::from_secs_f64(x));
                }
            }
            "resume_from" => {
                self.resume_from = if value.is_empty() { None } else { Some(value.to_string()) };
            }
            "audit" => {
                self.audit = match value.to_ascii_lowercase().as_str() {
                    "true" => true,
                    "false" => false,
                    _ => return err(format!("{key} expects true or false, got {value:?}")),
                };
            }
            "fault_seed" => self.faults_mut().seed = parse_u64(key, value)?,
            "sat_mttf_s" => {
                self.faults_mut().sat_flap.get_or_insert(DEFAULT_FLAP).mttf_s =
                    parse_f64(key, value)?;
            }
            "sat_mttr_s" => {
                self.faults_mut().sat_flap.get_or_insert(DEFAULT_FLAP).mttr_s =
                    parse_f64(key, value)?;
            }
            "isl_mttf_s" => {
                self.faults_mut().isl_flap.get_or_insert(DEFAULT_FLAP).mttf_s =
                    parse_f64(key, value)?;
            }
            "isl_mttr_s" => {
                self.faults_mut().isl_flap.get_or_insert(DEFAULT_FLAP).mttr_s =
                    parse_f64(key, value)?;
            }
            "sat_outage" => {
                let (target, from_s, until_s) = parse_window(key, value)?;
                self.faults_mut().sat_outages.push(OutageWindow { target, from_s, until_s });
            }
            "gsl_weather" => {
                let (target, from_s, until_s) = parse_window(key, value)?;
                self.faults_mut().gsl_weather.push(OutageWindow { target, from_s, until_s });
            }
            "isl_cut" => {
                let (pair, from_s, until_s) = parse_window_raw(key, value)?;
                let Some((a, b)) = pair.split_once('-') else {
                    return err(format!("{key} expects A-B:FROM_S:UNTIL_S, got {value:?}"));
                };
                let a = parse_u64(key, a)? as u32;
                let b = parse_u64(key, b)? as u32;
                self.faults_mut().isl_cuts.push(LinkCut { a, b, from_s, until_s });
            }
            "experiment" => {
                return err("the experiment name is fixed; pick a different registry entry")
            }
            _ => {
                self.params.insert(key.to_string(), infer_param(value));
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON (the schema `from_json` reads).
    pub fn to_json_string(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"experiment\": {},", json_str(&self.experiment));
        let _ = writeln!(s, "  \"constellation\": {},", json_str(self.constellation.slug()));
        match &self.ground {
            GroundSegment::TopCities(n) => {
                let _ = writeln!(s, "  \"ground\": {{ \"top_cities\": {n} }},");
            }
            GroundSegment::Cities(cities) => {
                s.push_str("  \"ground\": { \"cities\": [\n");
                for (i, gs) in cities.iter().enumerate() {
                    let _ = write!(
                        s,
                        "    {{ \"name\": {}, \"lat\": {}, \"lon\": {} }}",
                        json_str(&gs.name),
                        json_num(gs.latitude_deg),
                        json_num(gs.longitude_deg)
                    );
                    s.push_str(if i + 1 < cities.len() { ",\n" } else { "\n" });
                }
                s.push_str("  ] },\n");
            }
        }
        match &self.pairs {
            PairSelection::Named(pairs) if pairs.is_empty() => {
                s.push_str("  \"pairs\": { \"named\": [] },\n");
            }
            PairSelection::Named(pairs) => {
                s.push_str("  \"pairs\": { \"named\": [\n");
                for (i, (src, dst)) in pairs.iter().enumerate() {
                    let _ = write!(
                        s,
                        "    {{ \"src\": {}, \"dst\": {} }}",
                        json_str(src),
                        json_str(dst)
                    );
                    s.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                s.push_str("  ] },\n");
            }
            PairSelection::MinDistance { km } => {
                let _ = writeln!(s, "  \"pairs\": {{ \"min_distance_km\": {} }},", json_num(*km));
            }
            PairSelection::Permutation => {
                s.push_str("  \"pairs\": \"permutation\",\n");
            }
        }
        let _ = writeln!(s, "  \"duration_s\": {},", json_num(self.duration.secs_f64()));
        let _ = writeln!(s, "  \"step_ms\": {},", json_num(self.step.secs_f64() * 1e3));
        let _ = writeln!(s, "  \"line_rate_mbps\": {},", json_num(self.line_rate.mbps_f64()));
        let _ = writeln!(s, "  \"queue_packets\": {},", self.queue_packets);
        if let Some(b) = self.utilization_bucket {
            let _ = writeln!(s, "  \"utilization_bucket_s\": {},", json_num(b.secs_f64()));
        }
        let _ = writeln!(s, "  \"cc\": {},", json_str(self.cc.name()));
        let _ = writeln!(s, "  \"threads\": {},", self.threads);
        let _ = writeln!(s, "  \"seed\": {},", self.seed);
        // The engine shard count is emitted only when sharding is on,
        // keeping pre-existing spec files byte-identical.
        if self.sim_shards != 1 {
            let _ = writeln!(s, "  \"sim_shards\": {},", self.sim_shards);
        }
        // The fluid-mode knobs are emitted only when hybrid/fluid simulation
        // is on, keeping pre-existing spec files byte-identical.
        if self.sim_mode != SimMode::Packet {
            let _ = writeln!(s, "  \"sim_mode\": {},", json_str(self.sim_mode.name()));
        }
        if self.fluid_threshold_kbps != 0.0 {
            let _ =
                writeln!(s, "  \"fluid_threshold_kbps\": {},", json_num(self.fluid_threshold_kbps));
        }
        // Flow-scaling knobs are likewise emitted only when set, keeping
        // pre-existing spec files byte-identical.
        if let Some(n) = self.flows {
            let _ = writeln!(s, "  \"flows\": {n},");
        }
        if self.trace_sample_every != 1 {
            let _ = writeln!(s, "  \"trace_sample_every\": {},", self.trace_sample_every);
        }
        // Routing knobs are emitted only when they differ from the
        // defaults, keeping pre-existing spec files byte-identical.
        let routing_defaults = RoutingConfig::default();
        if self.routing_mode != routing_defaults.mode {
            let _ = writeln!(s, "  \"routing_mode\": {},", json_str(self.routing_mode.as_str()));
        }
        if self.repair_churn_threshold != routing_defaults.repair_churn_threshold {
            let _ = writeln!(
                s,
                "  \"repair_churn_threshold\": {},",
                json_num(self.repair_churn_threshold)
            );
        }
        // Resilience knobs are emitted only when set, keeping pre-existing
        // spec files byte-identical.
        if let Some(every) = self.checkpoint_every {
            let _ = writeln!(s, "  \"checkpoint_every_s\": {},", json_num(every.secs_f64()));
        }
        if let Some(dir) = &self.resume_from {
            let _ = writeln!(s, "  \"resume_from\": {},", json_str(dir));
        }
        if self.audit {
            s.push_str("  \"audit\": true,\n");
        }
        if let Some(f) = &self.faults {
            s.push_str("  \"faults\": {\n");
            let _ = writeln!(s, "    \"seed\": {},", f.seed);
            let _ = writeln!(s, "    \"sat_outages\": {},", json_windows(&f.sat_outages));
            let _ = writeln!(s, "    \"isl_cuts\": {},", json_cuts(&f.isl_cuts));
            if let Some(p) = &f.sat_flap {
                let _ = writeln!(s, "    \"sat_flap\": {},", json_flap(p));
            }
            if let Some(p) = &f.isl_flap {
                let _ = writeln!(s, "    \"isl_flap\": {},", json_flap(p));
            }
            let _ = writeln!(s, "    \"gsl_weather\": {}", json_windows(&f.gsl_weather));
            s.push_str("  },\n");
        }
        if self.params.is_empty() {
            s.push_str("  \"params\": {}\n");
        } else {
            s.push_str("  \"params\": {\n");
            let n = self.params.len();
            for (i, (k, v)) in self.params.iter().enumerate() {
                let _ = write!(s, "    {}: ", json_str(k));
                match v {
                    ParamValue::Num(x) => s.push_str(&json_num(*x)),
                    ParamValue::Flag(b) => s.push_str(if *b { "true" } else { "false" }),
                    ParamValue::Text(t) => s.push_str(&json_str(t)),
                    ParamValue::List(xs) => {
                        s.push('[');
                        for (j, x) in xs.iter().enumerate() {
                            if j > 0 {
                                s.push_str(", ");
                            }
                            s.push_str(&json_num(*x));
                        }
                        s.push(']');
                    }
                }
                s.push_str(if i + 1 < n { ",\n" } else { "\n" });
            }
            s.push_str("  }\n");
        }
        s.push('}');
        s
    }

    /// Parse a spec from the JSON produced by [`Self::to_json_string`]
    /// (unknown top-level keys are rejected to catch typos).
    pub fn from_json(text: &str) -> Result<ExperimentSpec, SpecError> {
        let v: Value = match serde_json::from_str(text) {
            Ok(v) => v,
            Err(e) => return err(format!("not valid JSON: {e}")),
        };
        Self::from_value(&v)
    }

    /// Parse a spec from an already-parsed JSON value.
    pub fn from_value(v: &Value) -> Result<ExperimentSpec, SpecError> {
        let mut spec =
            ExperimentSpec { experiment: req_str(v, "experiment")?, ..ExperimentSpec::default() };

        let cname = req_str(v, "constellation")?;
        spec.constellation = match ConstellationChoice::parse(&cname) {
            Some(c) => c,
            None => return err(format!("unknown constellation {cname:?}")),
        };

        let ground = v.get("ground").ok_or_else(|| SpecError("missing \"ground\"".into()))?;
        spec.ground = if let Some(n) = ground.get("top_cities").and_then(Value::as_u64) {
            GroundSegment::TopCities(n as usize)
        } else if let Some(cities) = ground.get("cities").and_then(Value::as_array) {
            let mut out = Vec::with_capacity(cities.len());
            for c in cities {
                let name = c
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| SpecError("ground city missing \"name\"".into()))?;
                let lat = c
                    .get("lat")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| SpecError(format!("city {name:?} missing \"lat\"")))?;
                let lon = c
                    .get("lon")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| SpecError(format!("city {name:?} missing \"lon\"")))?;
                out.push(GroundStation::new(name, lat, lon));
            }
            GroundSegment::Cities(out)
        } else {
            return err("\"ground\" must be { \"top_cities\": N } or { \"cities\": [...] }");
        };

        let pairs = v.get("pairs").ok_or_else(|| SpecError("missing \"pairs\"".into()))?;
        spec.pairs = if pairs.as_str() == Some("permutation") {
            PairSelection::Permutation
        } else if let Some(km) = pairs.get("min_distance_km").and_then(Value::as_f64) {
            PairSelection::MinDistance { km }
        } else if let Some(named) = pairs.get("named").and_then(Value::as_array) {
            let mut out = Vec::with_capacity(named.len());
            for p in named {
                let src = p
                    .get("src")
                    .and_then(Value::as_str)
                    .ok_or_else(|| SpecError("pair missing \"src\"".into()))?;
                let dst = p
                    .get("dst")
                    .and_then(Value::as_str)
                    .ok_or_else(|| SpecError("pair missing \"dst\"".into()))?;
                out.push((src.to_string(), dst.to_string()));
            }
            PairSelection::Named(out)
        } else {
            return err("\"pairs\" must be { \"named\": [...] }, { \"min_distance_km\": X } \
                 or \"permutation\"");
        };

        spec.duration = SimDuration::from_secs_f64(req_f64(v, "duration_s")?);
        spec.step = SimDuration::from_secs_f64(req_f64(v, "step_ms")? / 1e3);
        spec.line_rate = DataRate::from_bps((req_f64(v, "line_rate_mbps")? * 1e6).round() as u64);
        spec.queue_packets = req_u64(v, "queue_packets")? as usize;
        spec.utilization_bucket = match v.get("utilization_bucket_s") {
            Some(b) => match b.as_f64() {
                Some(secs) => Some(SimDuration::from_secs_f64(secs)),
                None => return err("\"utilization_bucket_s\" must be a number"),
            },
            None => None,
        };
        let ccname = req_str(v, "cc")?;
        spec.cc = match CcKind::parse(&ccname) {
            Some(cc) => cc,
            None => return err(format!("unknown congestion controller {ccname:?}")),
        };
        spec.threads = req_u64(v, "threads")? as usize;
        spec.seed = req_u64(v, "seed")?;
        if let Some(x) = v.get("sim_shards") {
            let n = x
                .as_u64()
                .ok_or_else(|| SpecError("\"sim_shards\" must be a positive integer".into()))?;
            if n == 0 {
                return err("\"sim_shards\" must be at least 1");
            }
            spec.sim_shards = n as usize;
        }
        if let Some(m) = v.get("sim_mode") {
            let name =
                m.as_str().ok_or_else(|| SpecError("\"sim_mode\" must be a string".into()))?;
            spec.sim_mode = match SimMode::parse(name) {
                Some(mode) => mode,
                None => return err(format!("unknown sim mode {name:?}")),
            };
        }
        if let Some(x) = v.get("fluid_threshold_kbps") {
            let t = x
                .as_f64()
                .ok_or_else(|| SpecError("\"fluid_threshold_kbps\" must be a number".into()))?;
            if t < 0.0 {
                return err("\"fluid_threshold_kbps\" must be non-negative");
            }
            spec.fluid_threshold_kbps = t;
        }
        if let Some(x) = v.get("flows") {
            let n = x
                .as_u64()
                .ok_or_else(|| SpecError("\"flows\" must be a positive integer".into()))?;
            if n == 0 {
                return err("\"flows\" must be at least 1");
            }
            spec.flows = Some(n);
        }
        if let Some(x) = v.get("trace_sample_every") {
            let n = x.as_u64().ok_or_else(|| {
                SpecError("\"trace_sample_every\" must be a positive integer".into())
            })?;
            if n == 0 {
                return err("\"trace_sample_every\" must be at least 1");
            }
            spec.trace_sample_every = n;
        }
        if let Some(m) = v.get("routing_mode") {
            let name =
                m.as_str().ok_or_else(|| SpecError("\"routing_mode\" must be a string".into()))?;
            spec.routing_mode = match RoutingMode::parse(name) {
                Some(mode) => mode,
                None => return err(format!("unknown routing mode {name:?}")),
            };
        }
        if let Some(x) = v.get("repair_churn_threshold") {
            spec.repair_churn_threshold = x
                .as_f64()
                .ok_or_else(|| SpecError("\"repair_churn_threshold\" must be a number".into()))?;
        }
        if let Some(x) = v.get("checkpoint_every_s") {
            let every = x
                .as_f64()
                .ok_or_else(|| SpecError("\"checkpoint_every_s\" must be a number".into()))?;
            if every <= 0.0 {
                return err("\"checkpoint_every_s\" must be positive");
            }
            spec.checkpoint_every = Some(SimDuration::from_secs_f64(every));
        }
        if let Some(x) = v.get("resume_from") {
            let dir =
                x.as_str().ok_or_else(|| SpecError("\"resume_from\" must be a string".into()))?;
            spec.resume_from = Some(dir.to_string());
        }
        if let Some(x) = v.get("audit") {
            spec.audit =
                x.as_bool().ok_or_else(|| SpecError("\"audit\" must be true or false".into()))?;
        }
        spec.faults = match v.get("faults") {
            Some(fv) => Some(parse_faults(fv)?),
            None => None,
        };

        if let Some(params) = v.get("params") {
            if let Some(obj) = params.as_object_keys() {
                for key in obj {
                    let Some(pv) = params.get(&key) else { continue };
                    spec.params.insert(key.clone(), value_to_param(&key, pv)?);
                }
            }
        }
        Ok(spec)
    }
}

/// Infer a [`ParamValue`] from `--set` text.
fn infer_param(value: &str) -> ParamValue {
    if value.eq_ignore_ascii_case("true") {
        return ParamValue::Flag(true);
    }
    if value.eq_ignore_ascii_case("false") {
        return ParamValue::Flag(false);
    }
    if let Ok(x) = value.parse::<f64>() {
        return ParamValue::Num(x);
    }
    if value.contains(',') {
        let parts: Result<Vec<f64>, _> =
            value.split(',').map(|p| p.trim().parse::<f64>()).collect();
        if let Ok(xs) = parts {
            return ParamValue::List(xs);
        }
    }
    ParamValue::Text(value.to_string())
}

fn value_to_param(key: &str, v: &Value) -> Result<ParamValue, SpecError> {
    if let Some(b) = v.as_bool() {
        return Ok(ParamValue::Flag(b));
    }
    if let Some(x) = v.as_f64() {
        return Ok(ParamValue::Num(x));
    }
    if let Some(s) = v.as_str() {
        return Ok(ParamValue::Text(s.to_string()));
    }
    if let Some(arr) = v.as_array() {
        let mut xs = Vec::with_capacity(arr.len());
        for item in arr {
            match item.as_f64() {
                Some(x) => xs.push(x),
                None => return err(format!("param {key:?}: list items must be numbers")),
            }
        }
        return Ok(ParamValue::List(xs));
    }
    err(format!("param {key:?} has an unsupported JSON type"))
}

/// One-line JSON array of outage windows.
fn json_windows(ws: &[OutageWindow]) -> String {
    let mut out = String::from("[");
    for (i, w) in ws.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{ \"target\": {}, \"from_s\": {}, \"until_s\": {} }}",
            w.target,
            json_num(w.from_s),
            json_num(w.until_s)
        );
    }
    out.push(']');
    out
}

/// One-line JSON array of ISL cuts.
fn json_cuts(cuts: &[LinkCut]) -> String {
    let mut out = String::from("[");
    for (i, c) in cuts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{ \"a\": {}, \"b\": {}, \"from_s\": {}, \"until_s\": {} }}",
            c.a,
            c.b,
            json_num(c.from_s),
            json_num(c.until_s)
        );
    }
    out.push(']');
    out
}

fn json_flap(p: &FlapProcess) -> String {
    format!("{{ \"mttf_s\": {}, \"mttr_s\": {} }}", json_num(p.mttf_s), json_num(p.mttr_s))
}

fn parse_faults(v: &Value) -> Result<FaultSpec, SpecError> {
    fn field_f64(v: &Value, ctx: &str, key: &str) -> Result<f64, SpecError> {
        v.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| SpecError(format!("{ctx} missing or non-numeric {key:?}")))
    }
    fn field_u32(v: &Value, ctx: &str, key: &str) -> Result<u32, SpecError> {
        v.get(key)
            .and_then(Value::as_u64)
            .map(|x| x as u32)
            .ok_or_else(|| SpecError(format!("{ctx} missing or non-integer {key:?}")))
    }
    fn windows(v: &Value, key: &str) -> Result<Vec<OutageWindow>, SpecError> {
        let Some(arr) = v.get(key) else { return Ok(Vec::new()) };
        let items = arr
            .as_array()
            .ok_or_else(|| SpecError(format!("\"faults.{key}\" must be an array")))?;
        let ctx = format!("faults.{key} entry");
        items
            .iter()
            .map(|w| {
                Ok(OutageWindow {
                    target: field_u32(w, &ctx, "target")?,
                    from_s: field_f64(w, &ctx, "from_s")?,
                    until_s: field_f64(w, &ctx, "until_s")?,
                })
            })
            .collect()
    }
    fn flap(v: &Value, key: &str) -> Result<Option<FlapProcess>, SpecError> {
        let Some(p) = v.get(key) else { return Ok(None) };
        let ctx = format!("faults.{key}");
        Ok(Some(FlapProcess {
            mttf_s: field_f64(p, &ctx, "mttf_s")?,
            mttr_s: field_f64(p, &ctx, "mttr_s")?,
        }))
    }

    let mut f = FaultSpec::default();
    if let Some(seed) = v.get("seed") {
        f.seed = seed
            .as_u64()
            .ok_or_else(|| SpecError("\"faults.seed\" must be a non-negative integer".into()))?;
    }
    f.sat_outages = windows(v, "sat_outages")?;
    f.gsl_weather = windows(v, "gsl_weather")?;
    if let Some(arr) = v.get("isl_cuts") {
        let items = arr
            .as_array()
            .ok_or_else(|| SpecError("\"faults.isl_cuts\" must be an array".into()))?;
        f.isl_cuts = items
            .iter()
            .map(|c| {
                Ok(LinkCut {
                    a: field_u32(c, "faults.isl_cuts entry", "a")?,
                    b: field_u32(c, "faults.isl_cuts entry", "b")?,
                    from_s: field_f64(c, "faults.isl_cuts entry", "from_s")?,
                    until_s: field_f64(c, "faults.isl_cuts entry", "until_s")?,
                })
            })
            .collect::<Result<_, SpecError>>()?;
    }
    f.sat_flap = flap(v, "sat_flap")?;
    f.isl_flap = flap(v, "isl_flap")?;
    Ok(f)
}

fn req_str(v: &Value, key: &str) -> Result<String, SpecError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| SpecError(format!("missing or non-string {key:?}")))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, SpecError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| SpecError(format!("missing or non-numeric {key:?}")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, SpecError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| SpecError(format!("missing or non-integer {key:?}")))
}

/// JSON string literal with the escapes city names could need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: `{}` formatting of f64 is shortest-round-trip in Rust,
/// so the value survives serialization exactly.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        // Spec fields are never NaN/inf; guard against it anyway.
        "0".to_string()
    }
}

/// Enumerating object keys differs between serde_json and the offline
/// test stub; go through a tiny shim trait so `from_value` stays portable.
trait ObjectKeys {
    fn as_object_keys(&self) -> Option<Vec<String>>;
}

impl ObjectKeys for Value {
    fn as_object_keys(&self) -> Option<Vec<String>> {
        self.as_object().map(|m| m.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentSpec {
        let mut spec = ExperimentSpec {
            experiment: "fig03_rtt_fluctuations".into(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(100),
            pairs: PairSelection::Named(vec![
                ("Rio de Janeiro".into(), "Saint Petersburg".into()),
                ("Manila".into(), "Dalian".into()),
            ]),
            duration: SimDuration::from_secs(60),
            step: SimDuration::from_millis(100),
            line_rate: DataRate::from_mbps(10),
            queue_packets: 100,
            utilization_bucket: None,
            cc: CcKind::NewReno,
            threads: 0,
            seed: 1,
            ..ExperimentSpec::default()
        };
        spec.params.insert("ping_interval_ms".into(), ParamValue::Num(20.0));
        spec.params.insert("frozen".into(), ParamValue::Flag(false));
        spec.params.insert("coarse_multiples".into(), ParamValue::List(vec![2.0, 20.0]));
        spec
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let spec = sample();
        let text = spec.to_json_string();
        let back = ExperimentSpec::from_json(&text).expect("parse own output");
        assert_eq!(spec, back);
        // And a second trip is byte-stable.
        assert_eq!(text, back.to_json_string());
    }

    #[test]
    fn round_trips_all_variants() {
        let mut spec = sample();
        spec.ground = GroundSegment::Cities(vec![
            GroundStation::new("Paris", 48.8566, 2.3522),
            GroundStation::new("Moscow", 55.7558, 37.6173),
        ]);
        spec.pairs = PairSelection::MinDistance { km: 500.0 };
        spec.utilization_bucket = Some(SimDuration::from_secs(1));
        let back = ExperimentSpec::from_json(&spec.to_json_string()).unwrap();
        assert_eq!(spec, back);

        spec.pairs = PairSelection::Permutation;
        let back = ExperimentSpec::from_json(&spec.to_json_string()).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let e = ExperimentSpec::from_json("{}").unwrap_err();
        assert!(e.to_string().contains("experiment"), "{e}");
        let e = ExperimentSpec::from_json("not json").unwrap_err();
        assert!(e.to_string().contains("JSON"), "{e}");
    }

    #[test]
    fn set_overrides_common_fields() {
        let mut spec = sample();
        spec.set("duration_s", "200").unwrap();
        assert_eq!(spec.duration, SimDuration::from_secs(200));
        spec.set("step_ms", "50").unwrap();
        assert_eq!(spec.step, SimDuration::from_millis(50));
        spec.set("line_rate_mbps", "25").unwrap();
        assert_eq!(spec.line_rate, DataRate::from_mbps(25));
        spec.set("cities", "30").unwrap();
        assert_eq!(spec.ground, GroundSegment::TopCities(30));
        spec.set("cc", "vegas").unwrap();
        assert_eq!(spec.cc, CcKind::Vegas);
        spec.set("threads", "4").unwrap();
        assert_eq!(spec.threads, 4);
        spec.set("constellation", "starlink_s1").unwrap();
        assert_eq!(spec.constellation, ConstellationChoice::StarlinkS1);
        spec.set("pairs", "Paris:Moscow;Tokyo:Sao Paulo").unwrap();
        assert_eq!(
            spec.pairs.named().unwrap(),
            &[
                ("Paris".to_string(), "Moscow".to_string()),
                ("Tokyo".to_string(), "Sao Paulo".to_string())
            ]
        );
    }

    #[test]
    fn set_routes_unknown_keys_to_params() {
        let mut spec = sample();
        spec.set("relay_spacing_deg", "4").unwrap();
        assert_eq!(spec.num("relay_spacing_deg"), Some(4.0));
        spec.set("frozen", "true").unwrap();
        assert_eq!(spec.flag("frozen"), Some(true));
        spec.set("line_rates_mbps", "1,10,25").unwrap();
        assert_eq!(spec.list("line_rates_mbps"), Some(&[1.0, 10.0, 25.0][..]));
        spec.set("note", "hello world").unwrap();
        assert_eq!(spec.text("note"), Some("hello world"));
    }

    #[test]
    fn set_rejects_bad_values() {
        let mut spec = sample();
        assert!(spec.set("duration_s", "soon").is_err());
        assert!(spec.set("cc", "reno2000").is_err());
        assert!(spec.set("constellation", "iridium").is_err());
        assert!(spec.set("pairs", "justonecity").is_err());
    }

    #[test]
    fn sim_config_reflects_spec() {
        let mut spec = sample();
        spec.line_rate = DataRate::from_mbps(25);
        spec.queue_packets = 50;
        spec.step = SimDuration::from_millis(50);
        spec.utilization_bucket = Some(SimDuration::from_secs(1));
        spec.threads = 4;
        let cfg = spec.sim_config();
        assert_eq!(cfg.link_rate, DataRate::from_mbps(25));
        assert_eq!(cfg.queue_packets, 50);
        assert_eq!(cfg.fstate_step, SimDuration::from_millis(50));
        assert_eq!(cfg.utilization_bucket, Some(SimDuration::from_secs(1)));
        assert_eq!(cfg.fstate_threads, 4);
    }

    #[test]
    fn faulted_spec_round_trips() {
        let mut spec = sample();
        let f = spec.faults_mut();
        f.seed = 7;
        f.sat_outages.push(OutageWindow { target: 12, from_s: 1.5, until_s: 4.25 });
        f.isl_cuts.push(LinkCut { a: 3, b: 7, from_s: 0.0, until_s: 2.0 });
        f.gsl_weather.push(OutageWindow { target: 0, from_s: 10.0, until_s: 30.0 });
        f.sat_flap = Some(FlapProcess { mttf_s: 570.0, mttr_s: 30.0 });
        f.isl_flap = Some(FlapProcess { mttf_s: 1200.0, mttr_s: 45.0 });
        let text = spec.to_json_string();
        let back = ExperimentSpec::from_json(&text).expect("parse own output");
        assert_eq!(spec, back);
        assert_eq!(text, back.to_json_string());
    }

    #[test]
    fn fault_free_spec_emits_no_faults_key() {
        // Byte compatibility: specs without faults serialize exactly as
        // before the fault subsystem existed.
        let spec = sample();
        assert!(!spec.to_json_string().contains("faults"));
        let back = ExperimentSpec::from_json(&spec.to_json_string()).unwrap();
        assert_eq!(back.faults, None);
    }

    #[test]
    fn set_fault_keys() {
        let mut spec = sample();
        spec.set("fault_seed", "99").unwrap();
        spec.set("sat_outage", "12:1.5:4.25").unwrap();
        spec.set("isl_cut", "3-7:0:2").unwrap();
        spec.set("gsl_weather", "0:10:30").unwrap();
        spec.set("sat_mttf_s", "570").unwrap();
        spec.set("sat_mttr_s", "30").unwrap();
        spec.set("isl_mttr_s", "45").unwrap();
        let f = spec.faults.as_ref().unwrap();
        assert_eq!(f.seed, 99);
        assert_eq!(f.sat_outages, vec![OutageWindow { target: 12, from_s: 1.5, until_s: 4.25 }]);
        assert_eq!(f.isl_cuts, vec![LinkCut { a: 3, b: 7, from_s: 0.0, until_s: 2.0 }]);
        assert_eq!(f.gsl_weather, vec![OutageWindow { target: 0, from_s: 10.0, until_s: 30.0 }]);
        assert_eq!(f.sat_flap, Some(FlapProcess { mttf_s: 570.0, mttr_s: 30.0 }));
        // Only mttr was set; mttf stays at the documented default.
        assert_eq!(f.isl_flap.unwrap().mttr_s, 45.0);

        assert!(spec.set("sat_outage", "12:1.5").is_err());
        assert!(spec.set("isl_cut", "37:0:2").is_err());
        assert!(spec.set("gsl_weather", "zero:10:30").is_err());
    }

    #[test]
    fn build_scenario_compiles_fault_schedule() {
        let mut spec = ExperimentSpec {
            constellation: ConstellationChoice::TelesatT1,
            ground: GroundSegment::TopCities(2),
            duration: SimDuration::from_secs(10),
            ..ExperimentSpec::default()
        };
        assert!(spec.build_scenario().sim_config.faults.is_none());
        spec.set("sat_outage", "5:1:4").unwrap();
        let scenario = spec.build_scenario();
        let schedule = scenario.sim_config.faults.expect("schedule attached");
        assert!(!schedule.is_empty());
        assert_eq!(schedule.events().len(), 2); // one Fail + one Recover
    }

    #[test]
    fn routing_spec_round_trips() {
        let mut spec = sample();
        spec.routing_mode = RoutingMode::Full;
        spec.repair_churn_threshold = 0.25;
        let text = spec.to_json_string();
        assert!(text.contains("\"routing_mode\": \"full\""));
        assert!(text.contains("\"repair_churn_threshold\": 0.25"));
        let back = ExperimentSpec::from_json(&text).expect("parse own output");
        assert_eq!(spec, back);
        assert_eq!(text, back.to_json_string());
    }

    #[test]
    fn default_routing_spec_emits_no_routing_keys() {
        // Byte compatibility: specs at the default routing configuration
        // serialize exactly as before the incremental engine existed.
        let spec = sample();
        let text = spec.to_json_string();
        assert!(!text.contains("routing_mode"));
        assert!(!text.contains("repair_churn_threshold"));
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back.routing_mode, RoutingMode::Incremental);
        assert_eq!(back.repair_churn_threshold, RoutingConfig::default().repair_churn_threshold);
    }

    #[test]
    fn set_routing_keys() {
        let mut spec = sample();
        spec.set("routing_mode", "full").unwrap();
        assert_eq!(spec.routing_mode, RoutingMode::Full);
        spec.set("routing_mode", "incremental").unwrap();
        assert_eq!(spec.routing_mode, RoutingMode::Incremental);
        spec.set("repair_churn_threshold", "0.5").unwrap();
        assert_eq!(spec.repair_churn_threshold, 0.5);

        assert!(spec.set("routing_mode", "dijkstra").is_err());
        assert!(spec.set("repair_churn_threshold", "-0.1").is_err());
        assert!(spec.set("repair_churn_threshold", "lots").is_err());
    }

    #[test]
    fn sim_config_reflects_routing() {
        let mut spec = sample();
        spec.set("routing_mode", "full").unwrap();
        spec.set("repair_churn_threshold", "0.3").unwrap();
        let cfg = spec.sim_config();
        assert_eq!(cfg.routing.mode, RoutingMode::Full);
        assert_eq!(cfg.routing.repair_churn_threshold, 0.3);
        assert_eq!(spec.routing_config(), cfg.routing);
    }

    #[test]
    fn sim_shards_round_trips_and_defaults_to_omitted() {
        // Byte compatibility: specs at the default (serial) engine serialize
        // exactly as before the sharded engine existed.
        let spec = sample();
        let text = spec.to_json_string();
        assert!(!text.contains("sim_shards"));
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back.sim_shards, 1);

        let mut spec = sample();
        spec.set("sim_shards", "4").unwrap();
        assert_eq!(spec.sim_shards, 4);
        let text = spec.to_json_string();
        assert!(text.contains("\"sim_shards\": 4"));
        let back = ExperimentSpec::from_json(&text).expect("parse own output");
        assert_eq!(spec, back);
        assert_eq!(text, back.to_json_string());
        assert_eq!(spec.sim_config().sim_shards, 4);

        assert!(spec.set("sim_shards", "0").is_err());
        assert!(spec.set("sim_shards", "many").is_err());
        assert!(ExperimentSpec::from_json("{\"experiment\": \"e\", \"sim_shards\": 0}").is_err());
    }

    #[test]
    fn sim_mode_round_trips_and_defaults_to_omitted() {
        // Byte compatibility: packet-mode specs serialize exactly as
        // before the fluid subsystem existed.
        let spec = sample();
        let text = spec.to_json_string();
        assert!(!text.contains("sim_mode"));
        assert!(!text.contains("fluid_threshold_kbps"));
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back.sim_mode, SimMode::Packet);
        assert_eq!(back.fluid_threshold_kbps, 0.0);

        let mut spec = sample();
        spec.set("sim_mode", "hybrid").unwrap();
        spec.set("fluid_threshold_kbps", "128").unwrap();
        assert_eq!(spec.sim_mode, SimMode::Hybrid);
        assert_eq!(spec.fluid_threshold_kbps, 128.0);
        let text = spec.to_json_string();
        assert!(text.contains("\"sim_mode\": \"hybrid\""));
        assert!(text.contains("\"fluid_threshold_kbps\": 128"));
        let back = ExperimentSpec::from_json(&text).expect("parse own output");
        assert_eq!(spec, back);
        assert_eq!(text, back.to_json_string());
        assert_eq!(spec.sim_config().sim_mode, SimMode::Hybrid);

        spec.set("sim_mode", "fluid").unwrap();
        assert_eq!(spec.sim_mode, SimMode::Fluid);
        spec.set("sim_mode", "packet").unwrap();
        assert_eq!(spec.sim_mode, SimMode::Packet);

        assert!(spec.set("sim_mode", "analytic").is_err());
        assert!(spec.set("fluid_threshold_kbps", "-1").is_err());
        assert!(spec.set("fluid_threshold_kbps", "slow").is_err());
        assert!(ExperimentSpec::from_json("{\"experiment\": \"e\", \"sim_mode\": \"x\"}").is_err());
        assert!(ExperimentSpec::from_json("{\"experiment\": \"e\", \"fluid_threshold_kbps\": -2}")
            .is_err());
    }

    #[test]
    fn flows_and_trace_sampling_round_trip_and_default_to_omitted() {
        // Byte compatibility: specs without the flow-scaling knobs
        // serialize exactly as before they existed.
        let spec = sample();
        let text = spec.to_json_string();
        assert!(!text.contains("\"flows\""));
        assert!(!text.contains("trace_sample_every"));
        let back = ExperimentSpec::from_json(&text).unwrap();
        assert_eq!(back.flows, None);
        assert_eq!(back.trace_sample_every, 1);

        let mut spec = sample();
        spec.set("flows", "1000000").unwrap();
        spec.set("trace_sample_every", "64").unwrap();
        assert_eq!(spec.flows, Some(1_000_000));
        assert_eq!(spec.trace_sample_every, 64);
        let text = spec.to_json_string();
        assert!(text.contains("\"flows\": 1000000"));
        assert!(text.contains("\"trace_sample_every\": 64"));
        let back = ExperimentSpec::from_json(&text).expect("parse own output");
        assert_eq!(spec, back);
        assert_eq!(text, back.to_json_string());
        assert_eq!(spec.sim_config().trace_sample_every, 64);

        assert!(spec.set("flows", "0").is_err());
        assert!(spec.set("flows", "many").is_err());
        assert!(spec.set("trace_sample_every", "0").is_err());
        assert!(ExperimentSpec::from_json("{\"experiment\": \"e\", \"flows\": 0}").is_err());
        assert!(ExperimentSpec::from_json("{\"experiment\": \"e\", \"trace_sample_every\": 0}")
            .is_err());
    }

    #[test]
    fn default_spec_matches_paper_defaults() {
        let spec = ExperimentSpec::default();
        let cfg = spec.sim_config();
        let d = SimConfig::default();
        assert_eq!(cfg.link_rate, d.link_rate);
        assert_eq!(cfg.queue_packets, d.queue_packets);
        assert_eq!(cfg.fstate_step, d.fstate_step);
        assert_eq!(cfg.fstate_threads, 0);
    }
}
