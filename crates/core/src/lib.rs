//! # Hypatia (Rust)
//!
//! A framework for simulating and visualizing the network behaviour of
//! low-Earth-orbit satellite mega-constellations — a from-scratch Rust
//! reproduction of *"Exploring the 'Internet from space' with Hypatia"*
//! (Kassing, Bhattacherjee, Águas, Saethre, Singla; ACM IMC 2020).
//!
//! This crate is the user-facing facade. It re-exports the building blocks
//! and adds:
//!
//! * [`scenario`] — a builder assembling constellation + ground segment +
//!   simulator configuration into a runnable scenario;
//! * [`experiments`] — canned, parameterized runners for every experiment
//!   in the paper's evaluation (RTT fluctuation, congestion-control
//!   behaviour, constellation-wide sweeps, forwarding-granularity
//!   ablation, cross-traffic bandwidth, bent-pipe comparisons, simulator
//!   scalability);
//! * [`analysis`] — distribution helpers (ECDFs, percentiles) shared by
//!   the figure-regeneration harness;
//! * [`spec`] — [`ExperimentSpec`](spec::ExperimentSpec), the declarative,
//!   JSON-round-trippable description of a run (constellation, ground
//!   segment, pairs, duration, Δt, rates, congestion control, threads,
//!   seed, free-form params);
//! * [`runner`] — the [`Experiment`](runner::Experiment) trait and the
//!   [`ExperimentRunner`](runner::ExperimentRunner) registry that owns the
//!   shared lifecycle (build the scenario once, execute, write the run's
//!   `manifest.json` through an
//!   [`ArtifactSink`](hypatia_viz::sink::ArtifactSink)), plus the
//!   supervised execution layer (panic capture, deadlines, memory
//!   budgets, retries);
//! * [`resilience`] — the segmented drive loop: periodic checkpoints,
//!   byte-identical resume, and conservation audits for long runs;
//! * [`figures`] — every table and figure of the paper (plus the extension
//!   studies) implemented against that trait and registered by name.
//!
//! ## Quick start
//!
//! ```
//! use hypatia::prelude::*;
//!
//! // Kuiper's first shell with two cities as ground stations.
//! let cities = hypatia::constellation::ground::top_cities(2);
//! let constellation = std::sync::Arc::new(
//!     hypatia::constellation::presets::kuiper_k1(cities));
//!
//! // Ping from the most to the second-most populous city for 2 s.
//! let (src, dst) = (constellation.gs_node(0), constellation.gs_node(1));
//! let mut sim = Simulator::new(constellation, SimConfig::default(), vec![src, dst]);
//! let ping = sim.add_app(src, 7, Box::new(
//!     PingApp::new(dst, SimDuration::from_millis(100), SimTime::from_secs(2))));
//! sim.run_until(SimTime::from_secs(3));
//! let app: &PingApp = sim.app_as(ping).unwrap();
//! assert!(app.received() > 0);
//! ```

pub mod analysis;
pub mod experiments;
pub mod figures;
pub mod resilience;
pub mod runner;
pub mod scenario;
pub mod spec;

// Re-export the component crates under stable names.
pub use hypatia_constellation as constellation;
pub use hypatia_fault as fault;
pub use hypatia_netsim as netsim;
pub use hypatia_orbit as orbit;
pub use hypatia_routing as routing;
pub use hypatia_transport as transport;
pub use hypatia_util as util;
pub use hypatia_viz as viz;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::scenario::{Scenario, ScenarioBuilder};
    pub use hypatia_constellation::{Constellation, GroundStation, NodeId};
    pub use hypatia_netsim::apps::{PingApp, UdpSink, UdpSource};
    pub use hypatia_netsim::{SimConfig, Simulator};
    pub use hypatia_transport::{Cubic, NewReno, TcpConfig, TcpSender, TcpSink, Vegas};
    pub use hypatia_util::{DataRate, SimDuration, SimTime};
}
