//! Crash resilience: the segmented simulation drive loop.
//!
//! Long experiment runs die — OOM kills, wall-clock limits, power loss.
//! This module is the one place a netsim-backed experiment advances its
//! simulator: [`drive`] runs the simulation to its horizon in
//! checkpoint-interval segments, writing a restartable snapshot at every
//! boundary, optionally running conservation audits, and honouring the
//! supervisor's [`Watchdog`] deadline and
//! memory budget. A later run of the same spec with `resume_from` set
//! restores the snapshot and replays only the tail — byte-identically,
//! because the simulator's checkpoint format captures the full
//! deterministic state (see `hypatia_netsim::checkpoint`).
//!
//! Checkpointing, auditing, and watchdog checks never alter simulation
//! behaviour: a driven run produces exactly the artifacts of a plain
//! `run_until` to the same horizon.

use crate::runner::{RunError, Watchdog};
use hypatia_netsim::audit::AuditViolation;
use hypatia_netsim::Simulator;
use hypatia_util::{SimDuration, SimTime};
use std::path::PathBuf;
use std::time::Instant;

/// How [`drive`] segments a simulation run.
#[derive(Debug, Clone, Default)]
pub struct DriveOptions {
    /// Snapshot interval in simulated time (None: no checkpoints, one
    /// segment to the horizon).
    pub checkpoint_every: Option<SimDuration>,
    /// Where snapshots go (`<out_dir>/checkpoints`); required when
    /// `checkpoint_every` is set.
    pub checkpoint_dir: Option<PathBuf>,
    /// Directory holding a previous run's snapshots: a simulation whose
    /// tagged snapshot exists there restores it before running.
    pub resume_from: Option<PathBuf>,
    /// Run conservation audits at every segment boundary.
    pub audit: bool,
}

impl DriveOptions {
    /// No checkpoints, no resume, no audits: plain `run_until`.
    pub fn off() -> Self {
        DriveOptions::default()
    }
}

/// What one [`drive`] call did beyond simulating.
#[derive(Debug, Clone, Default)]
pub struct DriveOutcome {
    /// Simulated time a snapshot was restored at (None: started fresh).
    pub resumed_at: Option<SimTime>,
    /// Snapshot writes performed, in order (all to the same tagged path).
    pub checkpoints: u64,
    /// The snapshot path, when any checkpoint was written.
    pub last_checkpoint: Option<PathBuf>,
    /// Wall-clock seconds spent writing snapshots (checkpoint overhead).
    pub checkpoint_wall_s: f64,
    /// Conservation audits performed.
    pub audit_checks: u64,
    /// Violations found by those audits (empty on a healthy run).
    pub violations: Vec<AuditViolation>,
}

/// Advance `sim` to `stop` in checkpoint-interval segments.
///
/// `tag` names this simulation's snapshot file (`<tag>.snap`) inside the
/// checkpoint directory; it must be deterministic for the spec so a
/// resumed run finds the snapshot its predecessor wrote. The watchdog is
/// consulted at every segment boundary, turning deadline and memory
/// overruns into typed errors while the freshest snapshot is already on
/// disk.
pub fn drive(
    sim: &mut Simulator,
    stop: SimTime,
    tag: &str,
    opts: &DriveOptions,
    watchdog: &Watchdog,
) -> Result<DriveOutcome, RunError> {
    let mut out = DriveOutcome::default();

    if let Some(dir) = &opts.resume_from {
        let snap = dir.join(format!("{tag}.snap"));
        if snap.exists() {
            sim.restore_from(&snap).map_err(|e| {
                RunError::Checkpoint(format!("cannot resume from {}: {e}", snap.display()))
            })?;
            out.resumed_at = Some(sim.now());
        }
    }

    let snap_path = match (&opts.checkpoint_every, &opts.checkpoint_dir) {
        (Some(_), Some(dir)) => {
            std::fs::create_dir_all(dir)?;
            Some(dir.join(format!("{tag}.snap")))
        }
        (Some(_), None) => {
            return Err(RunError::Checkpoint(
                "checkpoint interval set but no checkpoint directory".into(),
            ))
        }
        (None, _) => None,
    };

    loop {
        let next = match opts.checkpoint_every {
            Some(every) => (sim.now() + every).min(stop),
            None => stop,
        };
        sim.run_until(next);
        if opts.audit {
            out.audit_checks += 1;
            out.violations.extend(sim.audit());
        }
        if next >= stop {
            break;
        }
        if let Some(snap) = &snap_path {
            let t0 = Instant::now();
            sim.checkpoint_to(snap).map_err(|e| {
                RunError::Checkpoint(format!("cannot checkpoint to {}: {e}", snap.display()))
            })?;
            out.checkpoint_wall_s += t0.elapsed().as_secs_f64();
            out.checkpoints += 1;
            out.last_checkpoint = Some(snap.clone());
        }
        watchdog.check()?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_constellation::ground::GroundStation;
    use hypatia_constellation::gsl::GslConfig;
    use hypatia_constellation::isl::IslLayout;
    use hypatia_constellation::shell::ShellSpec;
    use hypatia_constellation::Constellation;
    use hypatia_netsim::apps::PingApp;
    use hypatia_netsim::{SimConfig, Simulator};
    use std::sync::Arc;

    fn sim() -> (Simulator, u32) {
        let c = Arc::new(Constellation::build(
            "drive-test",
            vec![ShellSpec::new("A", 550.0, 6, 6, 53.0)],
            IslLayout::PlusGrid,
            vec![GroundStation::new("a", 10.0, 10.0), GroundStation::new("b", -5.0, 55.0)],
            GslConfig::new(10.0),
        ));
        let (src, dst) = (c.gs_node(0), c.gs_node(1));
        let mut s = Simulator::new(c, SimConfig::default(), vec![src, dst]);
        let app = s.add_app(
            src,
            7,
            Box::new(PingApp::new(dst, SimDuration::from_millis(50), SimTime::from_secs(2))),
        );
        (s, app)
    }

    fn rtts(s: &Simulator, app: u32) -> Vec<(SimTime, SimDuration)> {
        let ping: &PingApp = s.app_as(app).unwrap();
        ping.rtts().to_vec()
    }

    #[test]
    fn segmented_drive_matches_plain_run() {
        let (mut plain, plain_app) = sim();
        plain.run_until(SimTime::from_secs(2));

        let dir = std::env::temp_dir().join(format!("hypatia_drive_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DriveOptions {
            checkpoint_every: Some(SimDuration::from_millis(600)),
            checkpoint_dir: Some(dir.clone()),
            resume_from: None,
            audit: true,
        };
        let (mut seg, seg_app) = sim();
        let out =
            drive(&mut seg, SimTime::from_secs(2), "t", &opts, &Watchdog::unlimited()).unwrap();
        assert_eq!(out.checkpoints, 3, "boundaries at 0.6, 1.2, 1.8 s");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.audit_checks >= 4);
        assert_eq!(rtts(&plain, plain_app), rtts(&seg, seg_app));

        // Resume from the on-disk snapshot: identical final state again.
        let opts_resume = DriveOptions { resume_from: Some(dir.clone()), ..opts };
        let (mut res, res_app) = sim();
        let out = drive(&mut res, SimTime::from_secs(2), "t", &opts_resume, &Watchdog::unlimited())
            .unwrap();
        assert_eq!(out.resumed_at, Some(SimTime::from_millis(1800)));
        assert_eq!(rtts(&plain, plain_app), rtts(&res, res_app));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_starts_fresh_and_corrupt_snapshot_errors() {
        let dir = std::env::temp_dir().join(format!("hypatia_drive_bad_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let opts = DriveOptions { resume_from: Some(dir.clone()), ..DriveOptions::off() };
        let (mut s, _) = sim();
        let out =
            drive(&mut s, SimTime::from_millis(100), "t", &opts, &Watchdog::unlimited()).unwrap();
        assert_eq!(out.resumed_at, None, "no snapshot: start at t = 0");

        std::fs::write(dir.join("t.snap"), b"not a snapshot").unwrap();
        let (mut s, _) = sim();
        match drive(&mut s, SimTime::from_millis(100), "t", &opts, &Watchdog::unlimited()) {
            Err(RunError::Checkpoint(msg)) => {
                assert!(msg.contains("resume"), "{msg}")
            }
            other => panic!("corrupt snapshot must be a Checkpoint error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_interval_without_directory_is_an_error() {
        let opts = DriveOptions {
            checkpoint_every: Some(SimDuration::from_millis(100)),
            ..DriveOptions::off()
        };
        let (mut s, _) = sim();
        match drive(&mut s, SimTime::from_millis(200), "t", &opts, &Watchdog::unlimited()) {
            Err(RunError::Checkpoint(_)) => {}
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }
}
