//! Golden-manifest regression tests: the same spec must produce a
//! byte-identical artifact set whether forwarding state is computed
//! serially or with worker threads, and specs must survive a disk
//! round-trip (the `--spec file.json` path of `run_experiment`).

use hypatia::runner::ExperimentRunner;
use hypatia::scenario::ConstellationChoice;
use hypatia::spec::{ExperimentSpec, GroundSegment, PairSelection, ParamValue};
use hypatia_constellation::GroundStation;
use hypatia_fault::{FaultSpec, FlapProcess, OutageWindow};
use hypatia_util::SimDuration;
use hypatia_viz::sink::ArtifactSink;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hypatia_golden_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Run `spec` into `dir` quietly; return (name, bytes, fnv64) per artifact
/// plus the manifest file's contents.
fn run_quiet(spec: ExperimentSpec, dir: &Path) -> (Vec<(String, u64, u64)>, String) {
    let runner = ExperimentRunner::new();
    let mut sink = ArtifactSink::new(dir.to_path_buf());
    sink.verbose = false;
    let (manifest_path, sink) = runner.run_with_sink(spec, sink).expect("experiment run succeeds");
    let records = sink.records().iter().map(|r| (r.name.clone(), r.bytes, r.fnv64)).collect();
    let manifest = std::fs::read_to_string(manifest_path).expect("manifest readable");
    (records, manifest)
}

/// Drop the one wall-clock line (`"events_per_sec"`) from a manifest so the
/// rest can be compared byte-for-byte. The event *count* stays: it is a pure
/// simulation observable and must match across queue impls and thread counts.
fn strip_wall_clock(manifest: &str) -> String {
    manifest.lines().filter(|l| !l.contains("\"events_per_sec\"")).collect::<Vec<_>>().join("\n")
}

fn assert_identical(spec: ExperimentSpec, tag: &str) {
    let serial_dir = temp_dir(&format!("{tag}_serial"));
    let threaded_dir = temp_dir(&format!("{tag}_threaded"));

    let serial_spec = ExperimentSpec { threads: 0, ..spec.clone() };
    let threaded_spec = ExperimentSpec { threads: 4, ..spec };

    let (serial, serial_manifest) = run_quiet(serial_spec, &serial_dir);
    let (threaded, threaded_manifest) = run_quiet(threaded_spec, &threaded_dir);

    assert!(!serial.is_empty(), "{tag}: expected artifacts, got none");
    assert_eq!(serial, threaded, "{tag}: artifact sets/checksums diverge");
    assert_eq!(
        strip_wall_clock(&serial_manifest),
        strip_wall_clock(&threaded_manifest),
        "{tag}: manifest.json diverges between serial and threaded runs"
    );

    let _ = std::fs::remove_dir_all(serial_dir);
    let _ = std::fs::remove_dir_all(threaded_dir);
}

/// Netsim-backed: Fig. 3's ping experiment on a two-city Kuiper scenario.
/// Exercises the full packet-level pipeline including threaded
/// forwarding-state prefetch.
#[test]
fn netsim_run_is_thread_invariant() {
    let mut spec = ExperimentSpec {
        experiment: "fig03_rtt_fluctuations".to_string(),
        constellation: ConstellationChoice::KuiperK1,
        ground: GroundSegment::Cities(vec![
            GroundStation::new("Rio de Janeiro", -22.9068, -43.1729),
            GroundStation::new("Saint Petersburg", 59.9311, 30.3609),
        ]),
        pairs: PairSelection::Named(vec![(
            "Rio de Janeiro".to_string(),
            "Saint Petersburg".to_string(),
        )]),
        duration: SimDuration::from_secs(5),
        step: SimDuration::from_millis(500),
        ..ExperimentSpec::default()
    };
    spec.params.insert("ping_interval_ms".to_string(), ParamValue::Num(250.0));
    assert_identical(spec, "fig03");
}

/// Routing-only: Fig. 9's granularity sweep, whose pair sweep is the
/// threaded snapshot-routing path.
#[test]
fn routing_run_is_thread_invariant() {
    let mut spec = ExperimentSpec {
        experiment: "fig09_timestep".to_string(),
        constellation: ConstellationChoice::TelesatT1,
        ground: GroundSegment::TopCities(10),
        pairs: PairSelection::MinDistance { km: 500.0 },
        duration: SimDuration::from_secs(10),
        step: SimDuration::from_millis(1000),
        ..ExperimentSpec::default()
    };
    spec.params.insert("coarse_multiples".to_string(), ParamValue::List(vec![2.0]));
    assert_identical(spec, "fig09");
}

/// The event engine is a pure performance knob: Fig. 2 with the wall-clock
/// slowdown artifacts disabled must produce byte-identical artifacts and a
/// byte-identical manifest (modulo the events/sec line) whether it runs on
/// the binary heap or the calendar queue, serially or with worker threads.
#[test]
fn fig02_manifest_is_queue_and_thread_invariant() {
    let base = {
        let mut spec = ExperimentSpec {
            experiment: "fig02_scalability".to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(10),
            pairs: PairSelection::Permutation,
            duration: SimDuration::from_secs(1),
            seed: 2020,
            ..ExperimentSpec::default()
        };
        spec.params.insert("line_rates_mbps".to_string(), ParamValue::List(vec![1.0, 10.0]));
        spec.params.insert("slowdown".to_string(), ParamValue::Flag(false));
        spec
    };
    let with_queue = |queue: &str, threads: usize| {
        let mut spec = ExperimentSpec { threads, ..base.clone() };
        spec.params.insert("queue".to_string(), ParamValue::Text(queue.to_string()));
        spec
    };

    let dir_heap = temp_dir("fig02_heap");
    let dir_cal = temp_dir("fig02_calendar");
    let dir_cal_mt = temp_dir("fig02_calendar_mt");
    let (heap, heap_manifest) = run_quiet(with_queue("heap", 0), &dir_heap);
    let (cal, cal_manifest) = run_quiet(with_queue("calendar", 0), &dir_cal);
    let (cal_mt, cal_mt_manifest) = run_quiet(with_queue("calendar", 4), &dir_cal_mt);

    assert!(!heap.is_empty(), "fig02: expected artifacts, got none");
    assert!(
        heap.iter().any(|(name, _, _)| name == "fig02_events_tcp.dat"),
        "fig02: events series missing: {heap:?}"
    );
    assert_eq!(heap, cal, "fig02: artifacts diverge between heap and calendar queues");
    assert_eq!(cal, cal_mt, "fig02: artifacts diverge between serial and threaded runs");
    let stripped = strip_wall_clock(&heap_manifest);
    assert!(stripped.contains("\"events\""), "fig02 manifest lacks perf events: {heap_manifest}");
    assert_eq!(
        stripped,
        strip_wall_clock(&cal_manifest),
        "fig02: manifest diverges between heap and calendar queues"
    );
    assert_eq!(
        stripped,
        strip_wall_clock(&cal_mt_manifest),
        "fig02: manifest diverges between serial and threaded runs"
    );

    for dir in [dir_heap, dir_cal, dir_cal_mt] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Fault injection preserves the determinism contract: the same fault spec
/// (explicit weather window + seeded satellite flaps) produces
/// byte-identical artifacts and manifest across queue kinds and thread
/// counts. The flap process lands failures between forwarding updates, so
/// this covers the mid-flight fault path end to end.
#[test]
fn faulted_fig02_manifest_is_queue_and_thread_invariant() {
    let base = {
        let mut spec = ExperimentSpec {
            experiment: "fig02_scalability".to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(10),
            pairs: PairSelection::Permutation,
            duration: SimDuration::from_secs(1),
            seed: 2020,
            faults: Some(FaultSpec {
                seed: 7,
                gsl_weather: vec![OutageWindow { target: 2, from_s: 0.3, until_s: 0.9 }],
                sat_flap: Some(FlapProcess::from_unavailability(0.1, 0.5)),
                ..FaultSpec::default()
            }),
            ..ExperimentSpec::default()
        };
        spec.params.insert("line_rates_mbps".to_string(), ParamValue::List(vec![10.0]));
        spec.params.insert("slowdown".to_string(), ParamValue::Flag(false));
        spec
    };
    let with_queue = |queue: &str, threads: usize| {
        let mut spec = ExperimentSpec { threads, ..base.clone() };
        spec.params.insert("queue".to_string(), ParamValue::Text(queue.to_string()));
        spec
    };

    let dir_heap = temp_dir("faulted_heap");
    let dir_cal = temp_dir("faulted_calendar");
    let dir_cal_mt = temp_dir("faulted_calendar_mt");
    let (heap, heap_manifest) = run_quiet(with_queue("heap", 0), &dir_heap);
    let (cal, cal_manifest) = run_quiet(with_queue("calendar", 0), &dir_cal);
    let (cal_mt, cal_mt_manifest) = run_quiet(with_queue("calendar", 4), &dir_cal_mt);

    assert!(!heap.is_empty(), "faulted fig02: expected artifacts, got none");
    assert_eq!(heap, cal, "faulted fig02: artifacts diverge between heap and calendar queues");
    assert_eq!(cal, cal_mt, "faulted fig02: artifacts diverge between serial and threaded runs");
    let stripped = strip_wall_clock(&heap_manifest);
    assert_eq!(
        stripped,
        strip_wall_clock(&cal_manifest),
        "faulted fig02: manifest diverges between heap and calendar queues"
    );
    assert_eq!(
        stripped,
        strip_wall_clock(&cal_mt_manifest),
        "faulted fig02: manifest diverges between serial and threaded runs"
    );

    for dir in [dir_heap, dir_cal, dir_cal_mt] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The arena flow table is a pure memory-layout knob: the faulted Fig. 2
/// workload must produce byte-identical artifacts with bulk per-node flow
/// tables as with one app per flow, across engine shard counts and queue
/// kinds. Manifests are compared between runs with the same engine shape
/// (the `perf.engine` block reports shard telemetry); artifact bytes must
/// match across every combination.
#[test]
fn arena_flow_table_reproduces_apps_artifacts_across_engines() {
    let base = {
        let mut spec = ExperimentSpec {
            experiment: "fig02_scalability".to_string(),
            constellation: ConstellationChoice::KuiperK1,
            ground: GroundSegment::TopCities(10),
            pairs: PairSelection::Permutation,
            duration: SimDuration::from_secs(1),
            seed: 2020,
            faults: Some(FaultSpec {
                seed: 7,
                gsl_weather: vec![OutageWindow { target: 2, from_s: 0.3, until_s: 0.9 }],
                sat_flap: Some(FlapProcess::from_unavailability(0.1, 0.5)),
                ..FaultSpec::default()
            }),
            ..ExperimentSpec::default()
        };
        spec.params.insert("line_rates_mbps".to_string(), ParamValue::List(vec![10.0]));
        spec.params.insert("slowdown".to_string(), ParamValue::Flag(false));
        spec
    };
    let variant = |flow_table: &str, queue: &str, shards: usize| {
        let mut spec = ExperimentSpec { sim_shards: shards, ..base.clone() };
        spec.params.insert("flow_table".to_string(), ParamValue::Text(flow_table.to_string()));
        spec.params.insert("queue".to_string(), ParamValue::Text(queue.to_string()));
        spec
    };

    let dir_serial = temp_dir("arena_ref_serial");
    let dir_sharded = temp_dir("arena_ref_sharded");
    let (apps, serial_manifest) = run_quiet(variant("apps", "calendar", 1), &dir_serial);
    let (apps_sharded, sharded_manifest) = run_quiet(variant("apps", "calendar", 4), &dir_sharded);
    assert!(!apps.is_empty(), "arena golden: expected artifacts, got none");
    assert_eq!(apps, apps_sharded, "apps layout must itself be shard-invariant");

    for (queue, shards) in [("calendar", 1), ("heap", 1), ("calendar", 4), ("heap", 4)] {
        let dir = temp_dir(&format!("arena_{queue}_{shards}"));
        let (arena, arena_manifest) = run_quiet(variant("arena", queue, shards), &dir);
        assert_eq!(
            apps, arena,
            "arena artifacts diverge from apps at queue={queue}, sim_shards={shards}"
        );
        let reference = if shards == 1 { &serial_manifest } else { &sharded_manifest };
        assert_eq!(
            strip_wall_clock(reference),
            strip_wall_clock(&arena_manifest),
            "arena manifest diverges from apps at queue={queue}, sim_shards={shards}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    let _ = std::fs::remove_dir_all(dir_serial);
    let _ = std::fs::remove_dir_all(dir_sharded);
}

/// A trivial (fault-free) FaultSpec compiles to an empty schedule and must
/// reproduce the artifacts of a run with no fault engine at all,
/// byte for byte.
#[test]
fn zero_fault_spec_reproduces_unfaulted_artifacts() {
    let mut spec = ExperimentSpec {
        experiment: "fig03_rtt_fluctuations".to_string(),
        constellation: ConstellationChoice::KuiperK1,
        ground: GroundSegment::Cities(vec![
            GroundStation::new("Manila", 14.5995, 120.9842),
            GroundStation::new("Dalian", 38.914, 121.6147),
        ]),
        pairs: PairSelection::Named(vec![("Manila".to_string(), "Dalian".to_string())]),
        duration: SimDuration::from_secs(5),
        step: SimDuration::from_millis(500),
        ..ExperimentSpec::default()
    };
    spec.params.insert("ping_interval_ms".to_string(), ParamValue::Num(250.0));

    let dir_none = temp_dir("faults_none");
    let dir_trivial = temp_dir("faults_trivial");
    let (none, none_manifest) = run_quiet(spec.clone(), &dir_none);
    spec.faults = Some(FaultSpec::default());
    let (trivial, trivial_manifest) = run_quiet(spec, &dir_trivial);

    assert!(!none.is_empty(), "expected artifacts, got none");
    assert_eq!(none, trivial, "a trivial fault spec changed the artifacts");
    assert_eq!(
        strip_wall_clock(&none_manifest),
        strip_wall_clock(&trivial_manifest),
        "a trivial fault spec changed the manifest"
    );

    let _ = std::fs::remove_dir_all(dir_none);
    let _ = std::fs::remove_dir_all(dir_trivial);
}

/// A faulted Fig. 2 base spec shared by the crash-resilience tests:
/// one line rate, deterministic artifacts only.
fn faulted_fig02_base() -> ExperimentSpec {
    let mut spec = ExperimentSpec {
        experiment: "fig02_scalability".to_string(),
        constellation: ConstellationChoice::KuiperK1,
        ground: GroundSegment::TopCities(10),
        pairs: PairSelection::Permutation,
        duration: SimDuration::from_secs(1),
        seed: 2020,
        faults: Some(FaultSpec {
            seed: 7,
            gsl_weather: vec![OutageWindow { target: 2, from_s: 0.3, until_s: 0.9 }],
            sat_flap: Some(FlapProcess::from_unavailability(0.1, 0.5)),
            ..FaultSpec::default()
        }),
        ..ExperimentSpec::default()
    };
    spec.params.insert("line_rates_mbps".to_string(), ParamValue::List(vec![10.0]));
    spec.params.insert("slowdown".to_string(), ParamValue::Flag(false));
    spec
}

/// A manifest minus its run-shape sections: `perf` is wall-clock,
/// `checkpoints` counts snapshot writes (a resumed leg writes fewer), and
/// `audit` counts boundary checks (audits restart at the restore point).
/// What remains — experiment, artifact checksums, warnings, status — must
/// be byte-identical between an uninterrupted and a resumed run.
fn manifest_core(manifest: &str) -> String {
    let mut doc: serde_json::Value = serde_json::from_str(manifest).expect("manifest parses");
    if let Some(obj) = doc.as_object_mut() {
        obj.remove("perf");
        obj.remove("checkpoints");
        obj.remove("audit");
    }
    serde_json::to_string_pretty(&doc).expect("manifest reserializes")
}

/// The audit section's violation list, when the manifest has one.
fn audit_violations(manifest: &str) -> Option<usize> {
    let doc: serde_json::Value = serde_json::from_str(manifest).expect("manifest parses");
    Some(doc.get("audit")?.get("violations")?.as_array().expect("violations array").len())
}

/// Byte-identical resume: the faulted Fig. 2 workload driven with periodic
/// checkpoints, then resumed from the snapshots it left on disk, must
/// reproduce the uninterrupted run's artifacts byte for byte — across
/// engine shard counts, both queue kinds, and packet/hybrid simulation
/// modes — with conservation audits green everywhere.
#[test]
fn resumed_faulted_fig02_is_byte_identical_across_engines() {
    for mode in ["packet", "hybrid"] {
        // Per-mode plain reference (no resilience knobs at all). Artifact
        // bytes are queue- and shard-invariant (proven above), so one
        // uninterrupted run anchors every engine variant of this mode.
        let dir_ref = temp_dir(&format!("resume_ref_{mode}"));
        let mut plain = faulted_fig02_base();
        plain.set("sim_mode", mode).expect("sim_mode knob");
        let (reference, _) = run_quiet(plain, &dir_ref);
        assert!(!reference.is_empty(), "{mode}: expected artifacts, got none");

        for shards in [1usize, 4] {
            for queue in ["heap", "calendar"] {
                let tag = format!("resume_{mode}_{queue}_{shards}");
                let variant = || {
                    let mut spec = ExperimentSpec { sim_shards: shards, ..faulted_fig02_base() };
                    spec.params.insert("queue".to_string(), ParamValue::Text(queue.to_string()));
                    spec.set("sim_mode", mode).expect("sim_mode knob");
                    spec.set("audit", "true").expect("audit knob");
                    spec.set("checkpoint_every_s", "0.3").expect("checkpoint knob");
                    spec
                };

                // Leg 1: uninterrupted, snapshotting at 0.3/0.6/0.9 s.
                let dir1 = temp_dir(&format!("{tag}_leg1"));
                let (arts1, manifest1) = run_quiet(variant(), &dir1);
                let snaps = dir1.join("checkpoints");
                assert!(
                    snaps.join("udp_apps_10000000bps.snap").exists()
                        && snaps.join("tcp_apps_10000000bps.snap").exists(),
                    "{tag}: expected per-point snapshots in {}",
                    snaps.display()
                );

                // Leg 2: resume from leg 1's snapshots — each point
                // restores at t = 0.9 s and replays only the tail.
                let dir2 = temp_dir(&format!("{tag}_leg2"));
                let mut leg2 = variant();
                leg2.set("resume_from", snaps.to_str().expect("utf8 path")).expect("resume knob");
                let (arts2, manifest2) = run_quiet(leg2, &dir2);

                assert_eq!(reference, arts1, "{tag}: checkpointing changed the artifacts");
                assert_eq!(reference, arts2, "{tag}: resumed artifacts diverge");
                assert_eq!(
                    manifest_core(&manifest1),
                    manifest_core(&manifest2),
                    "{tag}: manifests diverge beyond the run-shape sections"
                );
                for (leg, manifest) in [("leg1", &manifest1), ("leg2", &manifest2)] {
                    assert_eq!(
                        audit_violations(manifest),
                        Some(0),
                        "{tag} {leg}: conservation audit violations: {manifest}"
                    );
                }

                let _ = std::fs::remove_dir_all(dir1);
                let _ = std::fs::remove_dir_all(dir2);
            }
        }
        let _ = std::fs::remove_dir_all(dir_ref);
    }
}

/// Resume fails loudly, not silently: a snapshot with flipped bytes is a
/// checksum error, and a snapshot from a future format version is a
/// version error — both surface as `RunError::Checkpoint`, never as a
/// silently-fresh simulation.
#[test]
fn resume_rejects_corrupt_and_future_version_snapshots() {
    let dir1 = temp_dir("reject_leg1");
    let mut leg1 = faulted_fig02_base();
    leg1.set("checkpoint_every_s", "0.4").expect("checkpoint knob");
    run_quiet(leg1, &dir1);
    let snaps = dir1.join("checkpoints");
    let snap = snaps.join("udp_apps_10000000bps.snap");
    let pristine = std::fs::read(&snap).expect("snapshot readable");

    let resume_error = |tag: &str| {
        let dir = temp_dir(tag);
        let mut spec = faulted_fig02_base();
        spec.set("resume_from", snaps.to_str().expect("utf8 path")).expect("resume knob");
        let runner = ExperimentRunner::new();
        let mut sink = ArtifactSink::new(dir.clone());
        sink.verbose = false;
        let err = match runner.run_with_sink(spec, sink) {
            Err(e) => e,
            Ok(_) => panic!("{tag}: resume from a bad snapshot must fail"),
        };
        let _ = std::fs::remove_dir_all(dir);
        err
    };

    // Flip one body byte: the checksum catches it.
    let mut corrupt = pristine.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    std::fs::write(&snap, &corrupt).expect("write corrupt snapshot");
    match resume_error("reject_corrupt") {
        hypatia::runner::RunError::Checkpoint(msg) => {
            assert!(msg.contains("checksum"), "want a checksum diagnostic, got: {msg}")
        }
        other => panic!("corrupt snapshot must be a Checkpoint error, got {other:?}"),
    }

    // Bump the version field (and fix the checksum so it is reached):
    // an unsupported-version error, not a misparse.
    let mut future = pristine.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    let body_end = future.len() - 8;
    let sum = hypatia_util::hash::fnv1a_64(&future[..body_end]);
    future[body_end..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&snap, &future).expect("write future snapshot");
    match resume_error("reject_future") {
        hypatia::runner::RunError::Checkpoint(msg) => {
            assert!(msg.contains("version 99"), "want a version diagnostic, got: {msg}")
        }
        other => panic!("future snapshot must be a Checkpoint error, got {other:?}"),
    }

    let _ = std::fs::remove_dir_all(dir1);
}

/// The resilience knobs survive the `--spec file.json` disk round-trip
/// like every other spec field (and stay omitted when unset, keeping old
/// spec files loadable byte-for-byte).
#[test]
fn resilience_knobs_survive_disk_round_trip() {
    let mut spec = faulted_fig02_base();
    assert!(!spec.to_json_string().contains("checkpoint_every_s"), "unset knob must be omitted");
    spec.set("checkpoint_every_s", "0.25").expect("checkpoint knob");
    spec.set("resume_from", "/tmp/somewhere/checkpoints").expect("resume knob");
    spec.set("audit", "true").expect("audit knob");
    let text = spec.to_json_string();
    for key in ["checkpoint_every_s", "resume_from", "audit"] {
        assert!(text.contains(key), "{key} missing from {text}");
    }
    let back = ExperimentSpec::from_json(&text).expect("round-trip parses");
    assert_eq!(spec, back);
}

/// A spec written to disk and loaded back (the `--spec` path) is the same
/// spec.
#[test]
fn spec_survives_disk_round_trip() {
    let runner = ExperimentRunner::new();
    let dir = temp_dir("spec_roundtrip");
    for name in runner.names() {
        let spec = runner.spec(&name, false).expect("registered");
        let path = dir.join(format!("{name}.json"));
        std::fs::write(&path, spec.to_json_string()).expect("write spec");
        let text = std::fs::read_to_string(&path).expect("read spec");
        let back = ExperimentSpec::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(spec, back, "{name}");
    }
    let _ = std::fs::remove_dir_all(dir);
}
