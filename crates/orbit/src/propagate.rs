//! Orbit propagation: elements → inertial position/velocity at time `t`.
//!
//! Two fidelity levels, selectable per [`Propagator`]:
//!
//! * **Two-body Kepler** — exact for an ideal point-mass Earth. For the
//!   circular shells of Table 1 this is the dominant term.
//! * **Kepler + J2 secular** — adds the secular drift of the node (Ω̇),
//!   perigee (ω̇) and mean anomaly (Ṁ correction) caused by Earth's
//!   oblateness. This captures the physically meaningful part of SGP4 for
//!   near-circular LEO over simulation horizons of hours. The paper's own
//!   mobility model "adds a 1–3 km error per day", which it deems safely
//!   ignorable for runs under a few hours; our J2 model is well inside
//!   that envelope relative to full SGP4.

use crate::kepler::{solve_kepler, true_anomaly, KeplerianElements};
use hypatia_util::constants::{EARTH_J2, EARTH_RADIUS_KM};
use hypatia_util::{SimTime, Vec3};
use serde::{Deserialize, Serialize};

/// Perturbation model applied on top of two-body motion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PerturbationModel {
    /// Pure two-body Keplerian motion.
    TwoBody,
    /// Two-body plus J2 secular rates (node regression, apsidal rotation,
    /// mean-motion correction).
    #[default]
    J2Secular,
}

/// Inertial-frame state of a satellite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrbitState {
    /// Position in the ECI frame, km.
    pub position_km: Vec3,
    /// Velocity in the ECI frame, km/s.
    pub velocity_km_per_s: Vec3,
}

/// A propagator binds elements (at epoch t = 0) to a perturbation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Propagator {
    /// Elements at the simulation epoch.
    pub elements: KeplerianElements,
    /// Which perturbations to apply.
    pub model: PerturbationModel,
}

impl Propagator {
    /// A two-body propagator.
    pub fn two_body(elements: KeplerianElements) -> Self {
        Propagator { elements, model: PerturbationModel::TwoBody }
    }

    /// A J2-secular propagator (default fidelity).
    pub fn j2(elements: KeplerianElements) -> Self {
        Propagator { elements, model: PerturbationModel::J2Secular }
    }

    /// J2 secular rates `(Ω̇, ω̇, Ṁ_corr)` in rad/s.
    fn j2_rates(&self) -> (f64, f64, f64) {
        let el = &self.elements;
        let n = el.mean_motion_rad_per_s();
        let p = el.semi_latus_rectum_km();
        let factor = 1.5 * EARTH_J2 * (EARTH_RADIUS_KM / p).powi(2) * n;
        let cos_i = el.inclination_rad.cos();
        let raan_dot = -factor * cos_i;
        let argp_dot = factor * (2.0 - 2.5 * el.inclination_rad.sin().powi(2));
        let sqrt_1_e2 = (1.0 - el.eccentricity * el.eccentricity).sqrt();
        let m_dot_corr = factor * sqrt_1_e2 * (1.0 - 1.5 * el.inclination_rad.sin().powi(2));
        (raan_dot, argp_dot, m_dot_corr)
    }

    /// Elements advanced to time `t` (secular drift applied; anomaly updated).
    pub fn elements_at(&self, t: SimTime) -> KeplerianElements {
        let dt = t.secs_f64();
        let el = self.elements;
        let n = el.mean_motion_rad_per_s();
        let (raan_dot, argp_dot, m_dot_corr) = match self.model {
            PerturbationModel::TwoBody => (0.0, 0.0, 0.0),
            PerturbationModel::J2Secular => self.j2_rates(),
        };
        KeplerianElements {
            raan_rad: hypatia_util::angle::wrap_two_pi(el.raan_rad + raan_dot * dt),
            arg_perigee_rad: hypatia_util::angle::wrap_two_pi(el.arg_perigee_rad + argp_dot * dt),
            mean_anomaly_rad: hypatia_util::angle::wrap_two_pi(
                el.mean_anomaly_rad + (n + m_dot_corr) * dt,
            ),
            ..el
        }
    }

    /// ECI state at simulation time `t`.
    pub fn state_at(&self, t: SimTime) -> OrbitState {
        let el = self.elements_at(t);
        let e = el.eccentricity;
        let e_anom = solve_kepler(el.mean_anomaly_rad, e);
        let nu = true_anomaly(e_anom, e);
        let p = el.semi_latus_rectum_km();
        let r = p / (1.0 + e * nu.cos());

        // Perifocal frame: x towards perigee, z along angular momentum.
        let pos_pf = Vec3::new(r * nu.cos(), r * nu.sin(), 0.0);
        let mu = hypatia_util::constants::EARTH_MU_KM3_PER_S2;
        let h = (mu * p).sqrt();
        let vel_pf = Vec3::new(-(mu / h) * nu.sin(), (mu / h) * (e + nu.cos()), 0.0);

        // Perifocal → ECI: Rz(Ω) Rx(i) Rz(ω).
        let rot = |v: Vec3| {
            v.rotate_z(el.arg_perigee_rad).rotate_x(el.inclination_rad).rotate_z(el.raan_rad)
        };
        OrbitState { position_km: rot(pos_pf), velocity_km_per_s: rot(vel_pf) }
    }

    /// ECI position only (the common hot path).
    pub fn position_at(&self, t: SimTime) -> Vec3 {
        self.state_at(t).position_km
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_util::constants::{circular_orbit_velocity_km_per_s, EARTH_RADIUS_KM};
    use hypatia_util::SimDuration;
    use proptest::prelude::*;

    fn starlink_sat() -> KeplerianElements {
        KeplerianElements::circular(550.0, 53.0, 30.0, 45.0)
    }

    #[test]
    fn circular_radius_is_constant() {
        let prop = Propagator::two_body(starlink_sat());
        for s in [0u64, 60, 600, 3000] {
            let r = prop.position_at(SimTime::from_secs(s)).norm();
            assert!((r - (EARTH_RADIUS_KM + 550.0)).abs() < 1e-6, "r = {r} at t = {s}");
        }
    }

    #[test]
    fn velocity_magnitude_matches_circular_formula() {
        let prop = Propagator::two_body(starlink_sat());
        let v = prop.state_at(SimTime::from_secs(100)).velocity_km_per_s.norm();
        assert!((v - circular_orbit_velocity_km_per_s(550.0)).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn returns_to_start_after_one_period() {
        let el = starlink_sat();
        let prop = Propagator::two_body(el);
        let t_period = SimTime::from_secs_f64(el.period_s());
        let p0 = prop.position_at(SimTime::ZERO);
        let p1 = prop.position_at(t_period);
        assert!(p0.distance(p1) < 1e-3, "drift {} km", p0.distance(p1));
    }

    #[test]
    fn j2_node_regresses_for_prograde_orbit() {
        // Prograde (i < 90°) orbits regress: Ω decreases.
        let prop = Propagator::j2(starlink_sat());
        let el_later = prop.elements_at(SimTime::from_secs(3600));
        // Ω̇ ≈ -5°/day for Starlink-like shells → about -0.2° in an hour.
        let drift = hypatia_util::angle::wrap_pi(el_later.raan_rad - prop.elements.raan_rad);
        assert!(drift < 0.0, "expected node regression, got {drift}");
        assert!(drift > -0.02, "implausibly large drift {drift}");
    }

    #[test]
    fn j2_node_advances_for_retrograde_orbit() {
        // Telesat T1's i = 98.98° > 90° (sun-synchronous-like): Ω̇ > 0.
        let el = KeplerianElements::circular(1015.0, 98.98, 0.0, 0.0);
        let prop = Propagator::j2(el);
        let el_later = prop.elements_at(SimTime::from_secs(3600));
        let drift = hypatia_util::angle::wrap_pi(el_later.raan_rad - el.raan_rad);
        assert!(drift > 0.0, "expected node advance, got {drift}");
    }

    #[test]
    fn j2_and_two_body_agree_at_epoch() {
        let el = starlink_sat();
        let a = Propagator::two_body(el).position_at(SimTime::ZERO);
        let b = Propagator::j2(el).position_at(SimTime::ZERO);
        assert!(a.distance(b) < 1e-9);
    }

    #[test]
    fn j2_two_body_divergence_is_small_over_200s() {
        // Over a 200 s experiment (the paper's standard horizon), J2 vs
        // two-body differ by well under a kilometre — supporting the claim
        // that propagator fidelity does not drive the networking results.
        let el = starlink_sat();
        let t = SimTime::from_secs(200);
        let a = Propagator::two_body(el).position_at(t);
        let b = Propagator::j2(el).position_at(t);
        assert!(a.distance(b) < 1.0, "divergence {} km", a.distance(b));
    }

    #[test]
    fn inclination_bounds_z_extent() {
        // A satellite can never exceed |z| = a sin(i).
        let el = starlink_sat();
        let prop = Propagator::j2(el);
        let max_z = el.semi_major_axis_km * el.inclination_rad.sin();
        let mut t = SimTime::ZERO;
        for _ in 0..600 {
            let z = prop.position_at(t).z.abs();
            assert!(z <= max_z + 1e-6);
            t += SimDuration::from_secs(10);
        }
    }

    proptest! {
        /// Energy (vis-viva) is conserved along a two-body trajectory.
        #[test]
        fn vis_viva_holds(h in 400.0f64..1500.0, i in 0.0f64..100.0,
                          raan in 0.0f64..360.0, ma in 0.0f64..360.0,
                          t_s in 0.0f64..6000.0) {
            let el = KeplerianElements::circular(h, i, raan, ma);
            let st = Propagator::two_body(el).state_at(SimTime::from_secs_f64(t_s));
            let mu = hypatia_util::constants::EARTH_MU_KM3_PER_S2;
            let energy = st.velocity_km_per_s.norm_sq() / 2.0 - mu / st.position_km.norm();
            let expect = -mu / (2.0 * el.semi_major_axis_km);
            prop_assert!((energy - expect).abs() < 1e-6);
        }

        /// Angular momentum direction stays normal to the orbital plane.
        #[test]
        fn angular_momentum_fixed(h in 400.0f64..1500.0, i in 1.0f64..99.0,
                                  t_s in 0.0f64..6000.0) {
            let el = KeplerianElements::circular(h, i, 42.0, 7.0);
            let prop = Propagator::two_body(el);
            let st0 = prop.state_at(SimTime::ZERO);
            let st1 = prop.state_at(SimTime::from_secs_f64(t_s));
            let h0 = st0.position_km.cross(st0.velocity_km_per_s);
            let h1 = st1.position_km.cross(st1.velocity_km_per_s);
            prop_assert!(h0.distance(h1) / h0.norm() < 1e-9);
        }
    }
}
