//! Orbital mechanics for Hypatia.
//!
//! The paper drives its simulator with satellite trajectories described by
//! Keplerian orbital elements from FCC/ITU filings, converted to TLEs
//! (WGS72) and propagated by an SGP4-based mobility model. This crate
//! provides the equivalent, from scratch:
//!
//! * [`kepler`] — classical orbital elements and the Kepler equation;
//! * [`propagate`] — position/velocity in the inertial frame at time `t`,
//!   with optional J2 secular perturbations ("SGP4-lite": the paper notes
//!   the full model drifts 1–3 km/day, immaterial for sub-hour runs);
//! * [`frames`] — ECI ↔ ECEF ↔ geodetic coordinate transforms;
//! * [`geodesy`] — ground positions, great-circle distance, geodesic RTT;
//! * [`visibility`] — elevation angles, slant ranges, GSL reachability;
//! * [`tle`] — NORAD two-line element generation and parsing with
//!   checksums, mirroring the paper's Keplerian→TLE utility.

pub mod frames;
pub mod geodesy;
pub mod kepler;
pub mod propagate;
pub mod tle;
pub mod visibility;

pub use frames::{ecef_to_geodetic, eci_to_ecef, geodetic_to_ecef, gmst_rad, GeodeticPos};
pub use kepler::KeplerianElements;
pub use propagate::{OrbitState, Propagator};
pub use tle::Tle;
