//! NORAD two-line element (TLE) generation and parsing.
//!
//! The paper (§3.1) built "a utility that accepts Keplerian orbital elements
//! as input, and outputs TLEs in the WGS72 world geodetic system standard",
//! validated by round-tripping through pyephem. This module is that utility:
//! it formats elements into the fixed-column TLE format (with correct
//! modulo-10 checksums) and parses them back; the round trip is covered by
//! property tests.

use crate::kepler::KeplerianElements;
use hypatia_util::angle::{deg_to_rad, rad_to_deg};
use hypatia_util::constants::EARTH_MU_KM3_PER_S2;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while parsing a TLE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TleError {
    /// A line is not exactly 69 characters.
    BadLineLength { line: u8, len: usize },
    /// A line does not start with the expected line number.
    BadLineNumber { line: u8 },
    /// The modulo-10 checksum does not match.
    BadChecksum { line: u8, expected: u32, found: u32 },
    /// A numeric field failed to parse.
    BadField { line: u8, field: &'static str },
    /// The two lines carry different catalog numbers.
    CatalogMismatch,
}

impl fmt::Display for TleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TleError::BadLineLength { line, len } => {
                write!(f, "TLE line {line} has length {len}, expected 69")
            }
            TleError::BadLineNumber { line } => write!(f, "TLE line {line} has wrong line number"),
            TleError::BadChecksum { line, expected, found } => {
                write!(f, "TLE line {line} checksum {found}, expected {expected}")
            }
            TleError::BadField { line, field } => {
                write!(f, "TLE line {line}: cannot parse field `{field}`")
            }
            TleError::CatalogMismatch => write!(f, "TLE lines carry different catalog numbers"),
        }
    }
}

impl std::error::Error for TleError {}

/// A parsed (or to-be-formatted) two-line element set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tle {
    /// Satellite name (line 0 of a 3LE; free text, ≤ 24 chars meaningful).
    pub name: String,
    /// NORAD catalog number (we assign sequential IDs to unlaunched birds).
    pub catalog_number: u32,
    /// International designator, e.g. "24001A".
    pub intl_designator: String,
    /// Epoch year (two digits, 00–99 per the format).
    pub epoch_year: u8,
    /// Epoch day of year with fraction (1.0 = Jan 1 00:00).
    pub epoch_day: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// RAAN, degrees.
    pub raan_deg: f64,
    /// Eccentricity (the format stores 7 digits, decimal point assumed).
    pub eccentricity: f64,
    /// Argument of perigee, degrees.
    pub arg_perigee_deg: f64,
    /// Mean anomaly, degrees.
    pub mean_anomaly_deg: f64,
    /// Mean motion, revolutions/day.
    pub mean_motion_rev_per_day: f64,
    /// Revolution number at epoch.
    pub rev_number: u32,
}

/// Modulo-10 TLE checksum: digits count as their value, '-' counts as 1.
pub fn checksum(line: &str) -> u32 {
    line.chars()
        .map(|c| match c {
            '0'..='9' => c as u32 - '0' as u32,
            '-' => 1,
            _ => 0,
        })
        .sum::<u32>()
        % 10
}

impl Tle {
    /// Build a TLE record from Keplerian elements.
    ///
    /// `epoch_year`/`epoch_day` place the elements on the calendar purely
    /// for format compliance; Hypatia's simulation clock starts at the TLE
    /// epoch regardless.
    pub fn from_elements(
        name: impl Into<String>,
        catalog_number: u32,
        elements: &KeplerianElements,
        epoch_year: u8,
        epoch_day: f64,
    ) -> Tle {
        Tle {
            name: name.into(),
            catalog_number,
            intl_designator: format!("{:02}001{}", epoch_year, designator_piece(catalog_number)),
            epoch_year,
            epoch_day,
            inclination_deg: rad_to_deg(elements.inclination_rad),
            raan_deg: rad_to_deg(elements.raan_rad),
            eccentricity: elements.eccentricity,
            arg_perigee_deg: rad_to_deg(elements.arg_perigee_rad),
            mean_anomaly_deg: rad_to_deg(elements.mean_anomaly_rad),
            mean_motion_rev_per_day: elements.mean_motion_rev_per_day(),
            rev_number: 1,
        }
    }

    /// Recover Keplerian elements (semi-major axis from the mean motion via
    /// `a = (μ / n²)^{1/3}`).
    pub fn to_elements(&self) -> KeplerianElements {
        let n_rad_s = self.mean_motion_rev_per_day * std::f64::consts::TAU / 86_400.0;
        let a = (EARTH_MU_KM3_PER_S2 / (n_rad_s * n_rad_s)).cbrt();
        KeplerianElements {
            semi_major_axis_km: a,
            eccentricity: self.eccentricity,
            inclination_rad: deg_to_rad(self.inclination_deg),
            raan_rad: deg_to_rad(self.raan_deg),
            arg_perigee_rad: deg_to_rad(self.arg_perigee_deg),
            mean_anomaly_rad: deg_to_rad(self.mean_anomaly_deg),
        }
    }

    /// Format as the canonical three lines (name + line 1 + line 2).
    pub fn format_3le(&self) -> String {
        format!("{}\n{}\n{}", self.name, self.format_line1(), self.format_line2())
    }

    /// Format TLE line 1 (69 columns including checksum).
    pub fn format_line1(&self) -> String {
        // Columns (1-based):  1 | 3-7 catalog | 8 class | 10-17 intl desig |
        // 19-32 epoch | 34-43 ndot | 45-52 nddot | 54-61 bstar | 63 eph type |
        // 65-68 element set | 69 checksum.
        let body = format!(
            "1 {:05}U {:<8} {:02}{:012.8} {} {} {} 0  999",
            self.catalog_number % 100_000,
            truncate(&self.intl_designator, 8),
            self.epoch_year,
            self.epoch_day,
            " .00000000", // ndot/2: zero for generated constellations
            " 00000-0",   // nddot/6: zero, exponent form
            " 00000-0",   // BSTAR drag: zero
        );
        debug_assert_eq!(body.len(), 68, "line1 body length {}", body.len());
        format!("{body}{}", checksum(&body))
    }

    /// Format TLE line 2 (69 columns including checksum).
    pub fn format_line2(&self) -> String {
        let ecc7 = format!("{:07}", (self.eccentricity * 1e7).round() as u64);
        let body = format!(
            "2 {:05} {:8.4} {:8.4} {} {:8.4} {:8.4} {:11.8}{:5}",
            self.catalog_number % 100_000,
            self.inclination_deg,
            wrap_deg(self.raan_deg),
            ecc7,
            wrap_deg(self.arg_perigee_deg),
            wrap_deg(self.mean_anomaly_deg),
            self.mean_motion_rev_per_day,
            self.rev_number % 100_000,
        );
        debug_assert_eq!(body.len(), 68, "line2 body length {}", body.len());
        format!("{body}{}", checksum(&body))
    }

    /// Parse a TLE from its two element lines (name supplied separately).
    pub fn parse(name: impl Into<String>, line1: &str, line2: &str) -> Result<Tle, TleError> {
        let l1 = validate_line(line1, 1, '1')?;
        let l2 = validate_line(line2, 2, '2')?;

        let cat1: u32 = field(l1, 2, 7, 1, "catalog")?;
        let cat2: u32 = field(l2, 2, 7, 2, "catalog")?;
        if cat1 != cat2 {
            return Err(TleError::CatalogMismatch);
        }

        let epoch_year: u8 = field(l1, 18, 20, 1, "epoch year")?;
        let epoch_day: f64 = field(l1, 20, 32, 1, "epoch day")?;
        let intl = l1[9..17].trim().to_string();

        let inclination_deg: f64 = field(l2, 8, 16, 2, "inclination")?;
        let raan_deg: f64 = field(l2, 17, 25, 2, "raan")?;
        let ecc_digits: u64 = field(l2, 26, 33, 2, "eccentricity")?;
        let arg_perigee_deg: f64 = field(l2, 34, 42, 2, "arg perigee")?;
        let mean_anomaly_deg: f64 = field(l2, 43, 51, 2, "mean anomaly")?;
        let mean_motion: f64 = field(l2, 52, 63, 2, "mean motion")?;
        let rev_number: u32 = l2[63..68]
            .trim()
            .parse()
            .map_err(|_| TleError::BadField { line: 2, field: "rev number" })?;

        Ok(Tle {
            name: name.into(),
            catalog_number: cat1,
            intl_designator: intl,
            epoch_year,
            epoch_day,
            inclination_deg,
            raan_deg,
            eccentricity: ecc_digits as f64 / 1e7,
            arg_perigee_deg,
            mean_anomaly_deg,
            mean_motion_rev_per_day: mean_motion,
            rev_number,
        })
    }
}

fn wrap_deg(d: f64) -> f64 {
    hypatia_util::angle::wrap_360(d)
}

fn truncate(s: &str, n: usize) -> &str {
    &s[..s.len().min(n)]
}

/// Launch-piece letters A, B, ..., Z, AA, ... derived from the catalog number
/// so that generated designators stay unique and format-legal.
fn designator_piece(catalog: u32) -> String {
    let mut n = catalog % 676; // two letters max
    let mut s = String::new();
    loop {
        s.insert(0, (b'A' + (n % 26) as u8) as char);
        n /= 26;
        if n == 0 {
            break;
        }
    }
    s
}

fn validate_line(line: &str, which: u8, lead: char) -> Result<&str, TleError> {
    if line.len() != 69 {
        return Err(TleError::BadLineLength { line: which, len: line.len() });
    }
    if !line.starts_with(lead) {
        return Err(TleError::BadLineNumber { line: which });
    }
    let expected = checksum(&line[..68]);
    let found = line
        .chars()
        .nth(68)
        .and_then(|c| c.to_digit(10))
        .ok_or(TleError::BadField { line: which, field: "checksum" })?;
    if expected != found {
        return Err(TleError::BadChecksum { line: which, expected, found });
    }
    Ok(line)
}

fn field<T: std::str::FromStr>(
    line: &str,
    start: usize,
    end: usize,
    which: u8,
    name: &'static str,
) -> Result<T, TleError> {
    line[start..end].trim().parse().map_err(|_| TleError::BadField { line: which, field: name })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_elements() -> KeplerianElements {
        KeplerianElements::circular(550.0, 53.0, 125.5, 210.25)
    }

    #[test]
    fn checksum_of_iss_line() {
        // Real ISS TLE line 1 (checksum digit 7, body sums to 7 mod 10).
        let body = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  292";
        assert_eq!(checksum(body), 7);
    }

    #[test]
    fn lines_are_69_columns() {
        let tle = Tle::from_elements("STARLINK-TEST", 1, &sample_elements(), 24, 1.0);
        assert_eq!(tle.format_line1().len(), 69, "{}", tle.format_line1());
        assert_eq!(tle.format_line2().len(), 69, "{}", tle.format_line2());
    }

    #[test]
    fn generated_lines_have_valid_checksums() {
        let tle = Tle::from_elements("SAT", 42, &sample_elements(), 24, 123.456);
        for (i, line) in [tle.format_line1(), tle.format_line2()].iter().enumerate() {
            let expected = checksum(&line[..68]);
            let found = line.chars().nth(68).unwrap().to_digit(10).unwrap();
            assert_eq!(expected, found, "line {} checksum", i + 1);
        }
    }

    #[test]
    fn round_trip_preserves_elements() {
        let el = sample_elements();
        let tle = Tle::from_elements("SAT", 7, &el, 24, 1.0);
        let parsed = Tle::parse("SAT", &tle.format_line1(), &tle.format_line2()).unwrap();
        let back = parsed.to_elements();
        assert!(
            (back.semi_major_axis_km - el.semi_major_axis_km).abs() < 0.05,
            "a: {} vs {}",
            back.semi_major_axis_km,
            el.semi_major_axis_km
        );
        assert!((back.inclination_rad - el.inclination_rad).abs() < 1e-5);
        assert!((back.raan_rad - el.raan_rad).abs() < 1e-5);
        assert!((back.mean_anomaly_rad - el.mean_anomaly_rad).abs() < 1e-5);
        assert!(back.eccentricity.abs() < 1e-7);
    }

    #[test]
    fn parse_rejects_wrong_length() {
        let e = Tle::parse("X", "1 00001U", "2 00001").unwrap_err();
        assert!(matches!(e, TleError::BadLineLength { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_corrupted_checksum() {
        let tle = Tle::from_elements("SAT", 3, &sample_elements(), 24, 1.0);
        let mut l1 = tle.format_line1();
        // Flip the checksum digit.
        let last = l1.pop().unwrap();
        let flipped = char::from_digit((last.to_digit(10).unwrap() + 1) % 10, 10).unwrap();
        l1.push(flipped);
        let e = Tle::parse("SAT", &l1, &tle.format_line2()).unwrap_err();
        assert!(matches!(e, TleError::BadChecksum { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_catalog_mismatch() {
        let t1 = Tle::from_elements("A", 1, &sample_elements(), 24, 1.0);
        let t2 = Tle::from_elements("B", 2, &sample_elements(), 24, 1.0);
        let e = Tle::parse("A", &t1.format_line1(), &t2.format_line2()).unwrap_err();
        assert_eq!(e, TleError::CatalogMismatch);
    }

    #[test]
    fn parse_real_world_iss_tle() {
        let l1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
        let l2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";
        let tle = Tle::parse("ISS (ZARYA)", l1, l2).unwrap();
        assert_eq!(tle.catalog_number, 25544);
        assert!((tle.inclination_deg - 51.6416).abs() < 1e-9);
        assert!((tle.eccentricity - 0.0006703).abs() < 1e-12);
        assert!((tle.mean_motion_rev_per_day - 15.72125391).abs() < 1e-6);
        // ISS altitude ≈ 350 km in 2008.
        let alt = tle.to_elements().perigee_altitude_km();
        assert!((330.0..370.0).contains(&alt), "ISS altitude {alt}");
    }

    #[test]
    fn three_line_format_contains_name() {
        let tle = Tle::from_elements("KUIPER-0042", 42, &sample_elements(), 24, 1.0);
        let s = tle.format_3le();
        assert!(s.starts_with("KUIPER-0042\n1 "));
        assert_eq!(s.lines().count(), 3);
    }

    proptest! {
        /// Any circular-shell element set survives the TLE round trip.
        #[test]
        fn round_trip_any_shell(h in 400.0f64..1500.0, i in 0.1f64..99.9,
                                raan in 0.0f64..359.9, ma in 0.0f64..359.9,
                                cat in 1u32..99_999) {
            let el = KeplerianElements::circular(h, i, raan, ma);
            let tle = Tle::from_elements("P", cat, &el, 24, 32.5);
            let parsed = Tle::parse("P", &tle.format_line1(), &tle.format_line2()).unwrap();
            let back = parsed.to_elements();
            prop_assert!((back.perigee_altitude_km() - h).abs() < 0.1);
            prop_assert!((rad_to_deg(back.inclination_rad) - i).abs() < 1e-3);
            prop_assert!((rad_to_deg(back.raan_rad) - raan).abs() < 1e-3);
            prop_assert!((rad_to_deg(back.mean_anomaly_rad) - ma).abs() < 1e-3);
        }

        /// Formatting is always exactly 69 columns with a valid checksum.
        #[test]
        fn format_always_valid(h in 400.0f64..1999.0, i in 0.0f64..180.0,
                               raan in -720.0f64..720.0, ma in -720.0f64..720.0) {
            let el = KeplerianElements::circular(h, i, raan, ma);
            let tle = Tle::from_elements("X", 55, &el, 24, 200.0);
            for line in [tle.format_line1(), tle.format_line2()] {
                prop_assert_eq!(line.len(), 69);
                let expected = checksum(&line[..68]);
                let found = line.chars().nth(68).unwrap().to_digit(10).unwrap();
                prop_assert_eq!(expected, found);
            }
        }
    }
}
