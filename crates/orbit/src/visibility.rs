//! GS–satellite visibility: elevation angles and slant ranges.
//!
//! Paper §2.1 / Fig. 1: a satellite can only serve ground stations that see
//! it above the minimum angle of elevation `l` (Starlink 25°, Kuiper 30°,
//! Telesat 10°). Smaller `l` admits longer, lower-gain links.

use hypatia_util::angle::{deg_to_rad, rad_to_deg};
use hypatia_util::constants::EARTH_RADIUS_KM;
use hypatia_util::Vec3;

/// Elevation angle (degrees above the local horizon) at which a ground
/// station at ECEF position `gs` sees a satellite at ECEF position `sat`.
///
/// Negative values mean the satellite is below the horizon. Defined by the
/// angle between the GS→satellite vector and the local horizontal plane
/// (whose normal is the GS zenith direction).
pub fn elevation_deg(gs: Vec3, sat: Vec3) -> f64 {
    let zenith = gs.normalized();
    let to_sat = sat - gs;
    let range = to_sat.norm();
    assert!(range > 0.0, "satellite coincides with ground station");
    rad_to_deg((zenith.dot(to_sat) / range).clamp(-1.0, 1.0).asin())
}

/// Azimuth (degrees clockwise from true north) at which `gs` sees `sat`.
/// Paper Fig. 12's ground-observer view plots azimuth (0° = N, 90° = E)
/// against elevation.
pub fn azimuth_deg(gs: Vec3, sat: Vec3) -> f64 {
    let zenith = gs.normalized();
    // Local east: ẑ_earth × zenith (undefined at the poles; fall back to x̂).
    let earth_z = Vec3::new(0.0, 0.0, 1.0);
    let east_raw = earth_z.cross(zenith);
    let east =
        if east_raw.norm() < 1e-9 { Vec3::new(1.0, 0.0, 0.0) } else { east_raw.normalized() };
    let north = zenith.cross(east);
    let to_sat = sat - gs;
    let e = to_sat.dot(east);
    let n = to_sat.dot(north);
    hypatia_util::angle::wrap_360(rad_to_deg(e.atan2(n)))
}

/// Straight-line (slant) range from GS to satellite, km.
pub fn slant_range_km(gs: Vec3, sat: Vec3) -> f64 {
    gs.distance(sat)
}

/// True if the satellite is visible above `min_elevation_deg`.
pub fn is_visible(gs: Vec3, sat: Vec3, min_elevation_deg: f64) -> bool {
    elevation_deg(gs, sat) >= min_elevation_deg
}

/// Maximum slant range at which a satellite at altitude `h_km` can be seen
/// at elevation ≥ `min_elevation_deg` from the surface:
///
/// `d = sqrt((R+h)² − R² cos² l) − R sin l`
///
/// This closed form (law of cosines in the GS–satellite–geocenter triangle)
/// lets GSL candidate search prune by distance before computing angles.
pub fn max_gsl_range_km(h_km: f64, min_elevation_deg: f64) -> f64 {
    max_gsl_range_from_radii_km(EARTH_RADIUS_KM, EARTH_RADIUS_KM + h_km, min_elevation_deg)
}

/// Generalized maximum slant range for a ground station at geocentric
/// radius `gs_radius_km` and a satellite at geocentric radius
/// `sat_radius_km`:
///
/// `d = sqrt(r_sat² − (r_gs cos l)²) − r_gs sin l`
///
/// The range **grows as the ground station sits closer to the geocenter**
/// (Earth's oblateness pulls high-latitude stations ~16 km inward), so a
/// bound intended to *prune* candidates must be evaluated with the polar
/// radius — see [`conservative_max_gsl_range_km`].
pub fn max_gsl_range_from_radii_km(
    gs_radius_km: f64,
    sat_radius_km: f64,
    min_elevation_deg: f64,
) -> f64 {
    assert!(sat_radius_km > gs_radius_km, "satellite below the ground station");
    assert!(
        (0.0..=90.0).contains(&min_elevation_deg),
        "elevation must be in [0, 90]: {min_elevation_deg}"
    );
    let l = deg_to_rad(min_elevation_deg);
    (sat_radius_km.powi(2) - (gs_radius_km * l.cos()).powi(2)).sqrt() - gs_radius_km * l.sin()
}

/// Upper bound on the GSL slant range valid for *any* ground station on
/// the WGS72 ellipsoid (uses the polar radius, where the range is
/// longest). Safe for candidate pruning; the exact elevation test decides.
pub fn conservative_max_gsl_range_km(h_km: f64, min_elevation_deg: f64) -> f64 {
    let polar_radius =
        EARTH_RADIUS_KM * (1.0 - 1.0 / hypatia_util::constants::EARTH_INV_FLATTENING);
    max_gsl_range_from_radii_km(polar_radius, EARTH_RADIUS_KM + h_km, min_elevation_deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::{geodetic_to_ecef, GeodeticPos};
    use proptest::prelude::*;

    fn gs_at(lat: f64, lon: f64) -> Vec3 {
        geodetic_to_ecef(GeodeticPos::surface(lat, lon))
    }

    fn sat_above(lat: f64, lon: f64, h: f64) -> Vec3 {
        geodetic_to_ecef(GeodeticPos { latitude_deg: lat, longitude_deg: lon, altitude_km: h })
    }

    #[test]
    fn overhead_satellite_is_at_90_degrees() {
        let gs = gs_at(10.0, 20.0);
        let sat = sat_above(10.0, 20.0, 550.0);
        assert!((elevation_deg(gs, sat) - 90.0).abs() < 1e-6);
    }

    #[test]
    fn antipodal_satellite_is_below_horizon() {
        let gs = gs_at(0.0, 0.0);
        let sat = sat_above(0.0, 180.0, 550.0);
        assert!(elevation_deg(gs, sat) < -80.0);
    }

    #[test]
    fn elevation_decreases_with_ground_distance() {
        let gs = gs_at(0.0, 0.0);
        let e1 = elevation_deg(gs, sat_above(0.0, 2.0, 550.0));
        let e2 = elevation_deg(gs, sat_above(0.0, 8.0, 550.0));
        let e3 = elevation_deg(gs, sat_above(0.0, 15.0, 550.0));
        assert!(e1 > e2 && e2 > e3, "{e1} {e2} {e3}");
    }

    #[test]
    fn max_range_at_90_degrees_is_altitude() {
        assert!((max_gsl_range_km(550.0, 90.0) - 550.0).abs() < 1e-9);
    }

    #[test]
    fn max_range_grows_as_elevation_shrinks() {
        let d25 = max_gsl_range_km(550.0, 25.0);
        let d10 = max_gsl_range_km(550.0, 10.0);
        let d0 = max_gsl_range_km(550.0, 0.0);
        assert!(d0 > d10 && d10 > d25 && d25 > 550.0, "{d0} {d10} {d25}");
        // Known values: at h=550 km, l=25° → ~1123 km; l=0° → ~2704 km.
        assert!((d25 - 1123.0).abs() < 15.0, "d25 {d25}");
        assert!((d0 - 2704.0).abs() < 20.0, "d0 {d0}");
    }

    #[test]
    fn visibility_threshold_consistent_with_closed_form() {
        // A satellite exactly at the max range must sit at ~the min elevation.
        let gs = gs_at(0.0, 0.0);
        let h = 630.0;
        let l = 30.0;
        // Sweep longitudes to find the boundary by both predicates; they
        // must flip at the same point.
        let mut last_visible = true;
        for tenth_deg in 1..200 {
            let lon = tenth_deg as f64 * 0.1;
            let sat = sat_above(0.0, lon, h);
            let by_angle = is_visible(gs, sat, l);
            let by_range = slant_range_km(gs, sat) <= max_gsl_range_km(h, l);
            assert_eq!(by_angle, by_range, "disagree at lon {lon}");
            if !last_visible {
                assert!(!by_angle, "visibility not monotone in ground distance");
            }
            last_visible = by_angle;
        }
        assert!(!last_visible, "satellite 20° away should be out of range");
    }

    #[test]
    fn azimuth_cardinal_directions() {
        let gs = gs_at(0.0, 0.0);
        // Satellite to the north (higher latitude): azimuth ≈ 0°.
        let n = azimuth_deg(gs, sat_above(5.0, 0.0, 550.0));
        assert!(!(1.0..=359.0).contains(&n), "north az {n}");
        // East (greater longitude): ≈ 90°.
        let e = azimuth_deg(gs, sat_above(0.0, 5.0, 550.0));
        assert!((e - 90.0).abs() < 1.0, "east az {e}");
        // South: ≈ 180°.
        let s = azimuth_deg(gs, sat_above(-5.0, 0.0, 550.0));
        assert!((s - 180.0).abs() < 1.0, "south az {s}");
        // West: ≈ 270°.
        let w = azimuth_deg(gs, sat_above(0.0, -5.0, 550.0));
        assert!((w - 270.0).abs() < 1.0, "west az {w}");
    }

    proptest! {
        #[test]
        fn elevation_in_valid_range(lat in -80.0f64..80.0, lon in -180.0f64..180.0,
                                    slat in -80.0f64..80.0, slon in -180.0f64..180.0,
                                    h in 300.0f64..2000.0) {
            let e = elevation_deg(gs_at(lat, lon), sat_above(slat, slon, h));
            prop_assert!((-90.0..=90.0).contains(&e));
        }

        #[test]
        fn azimuth_in_valid_range(lat in -80.0f64..80.0, lon in -180.0f64..180.0,
                                  slat in -80.0f64..80.0, slon in -180.0f64..180.0) {
            let a = azimuth_deg(gs_at(lat, lon), sat_above(slat, slon, 550.0));
            prop_assert!((0.0..360.0).contains(&a));
        }
    }
}
