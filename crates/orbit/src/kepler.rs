//! Classical (Keplerian) orbital elements and the Kepler equation.
//!
//! The constellations in the paper's Table 1 are circular orbits described
//! by altitude and inclination; orbits in a shell are uniformly spread in
//! right ascension and satellites uniformly spaced in mean anomaly. We keep
//! full elliptical generality (the TLE format requires eccentricity anyway)
//! but the `circular` constructor is the common entry point.

use hypatia_util::angle::{deg_to_rad, wrap_two_pi};
use hypatia_util::constants::{EARTH_MU_KM3_PER_S2, EARTH_RADIUS_KM};
use serde::{Deserialize, Serialize};

/// Classical orbital elements, angles in **radians**, lengths in **km**.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeplerianElements {
    /// Semi-major axis `a`, km (from Earth's center).
    pub semi_major_axis_km: f64,
    /// Eccentricity `e` in `[0, 1)`.
    pub eccentricity: f64,
    /// Inclination `i`, rad.
    pub inclination_rad: f64,
    /// Right ascension of the ascending node Ω, rad.
    pub raan_rad: f64,
    /// Argument of perigee ω, rad (irrelevant for circular orbits; kept 0).
    pub arg_perigee_rad: f64,
    /// Mean anomaly at epoch M₀, rad.
    pub mean_anomaly_rad: f64,
}

impl KeplerianElements {
    /// A circular orbit at altitude `h_km` above the WGS72 equatorial radius.
    ///
    /// `raan_deg` is the right ascension of the ascending node and
    /// `mean_anomaly_deg` the satellite's phase within the orbit, both in
    /// degrees as the filings express them.
    pub fn circular(h_km: f64, inclination_deg: f64, raan_deg: f64, mean_anomaly_deg: f64) -> Self {
        assert!(h_km > 0.0, "altitude must be positive");
        KeplerianElements {
            semi_major_axis_km: EARTH_RADIUS_KM + h_km,
            eccentricity: 0.0,
            inclination_rad: deg_to_rad(inclination_deg),
            raan_rad: wrap_two_pi(deg_to_rad(raan_deg)),
            arg_perigee_rad: 0.0,
            mean_anomaly_rad: wrap_two_pi(deg_to_rad(mean_anomaly_deg)),
        }
    }

    /// Altitude above the (spherical WGS72) Earth surface at perigee, km.
    pub fn perigee_altitude_km(&self) -> f64 {
        self.semi_major_axis_km * (1.0 - self.eccentricity) - EARTH_RADIUS_KM
    }

    /// Mean motion `n = sqrt(μ/a³)`, rad/s.
    pub fn mean_motion_rad_per_s(&self) -> f64 {
        (EARTH_MU_KM3_PER_S2 / self.semi_major_axis_km.powi(3)).sqrt()
    }

    /// Orbital period, seconds.
    pub fn period_s(&self) -> f64 {
        std::f64::consts::TAU / self.mean_motion_rad_per_s()
    }

    /// Mean motion in revolutions per day (the TLE unit).
    pub fn mean_motion_rev_per_day(&self) -> f64 {
        86_400.0 / self.period_s()
    }

    /// Semi-latus rectum `p = a(1-e²)`, km.
    pub fn semi_latus_rectum_km(&self) -> f64 {
        self.semi_major_axis_km * (1.0 - self.eccentricity * self.eccentricity)
    }
}

/// Solve Kepler's equation `M = E - e sin E` for the eccentric anomaly `E`
/// by Newton–Raphson. Converges in a handful of iterations for all `e < 1`.
pub fn solve_kepler(mean_anomaly_rad: f64, eccentricity: f64) -> f64 {
    assert!((0.0..1.0).contains(&eccentricity), "eccentricity must be in [0,1): {eccentricity}");
    let m = wrap_two_pi(mean_anomaly_rad);
    if eccentricity == 0.0 {
        return m;
    }
    // Standard starting guess: E₀ = M for small e, else π.
    let mut e_anom = if eccentricity < 0.8 { m } else { std::f64::consts::PI };
    for _ in 0..30 {
        let f = e_anom - eccentricity * e_anom.sin() - m;
        let fp = 1.0 - eccentricity * e_anom.cos();
        let delta = f / fp;
        e_anom -= delta;
        if delta.abs() < 1e-14 {
            break;
        }
    }
    e_anom
}

/// True anomaly ν from eccentric anomaly `E` and eccentricity.
pub fn true_anomaly(eccentric_anomaly_rad: f64, eccentricity: f64) -> f64 {
    let half = eccentric_anomaly_rad / 2.0;
    let num = (1.0 + eccentricity).sqrt() * half.sin();
    let den = (1.0 - eccentricity).sqrt() * half.cos();
    wrap_two_pi(2.0 * num.atan2(den))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn circular_constructor_sets_altitude() {
        let el = KeplerianElements::circular(550.0, 53.0, 10.0, 20.0);
        assert!((el.perigee_altitude_km() - 550.0).abs() < 1e-9);
        assert_eq!(el.eccentricity, 0.0);
    }

    #[test]
    fn period_matches_constants_helper() {
        let el = KeplerianElements::circular(630.0, 51.9, 0.0, 0.0);
        let expect = hypatia_util::constants::circular_orbit_period_s(630.0);
        assert!((el.period_s() - expect).abs() < 1e-6);
    }

    #[test]
    fn kepler_equation_circular_is_identity() {
        for m in [0.0, 1.0, 3.0, 6.0] {
            assert!((solve_kepler(m, 0.0) - wrap_two_pi(m)).abs() < 1e-14);
        }
    }

    #[test]
    fn kepler_known_value() {
        // Classic textbook case: M = 0.5 rad, e = 0.1 → E ≈ 0.5527 rad.
        let e_anom = solve_kepler(0.5, 0.1);
        assert!((e_anom - 0.5527).abs() < 1e-3, "E = {e_anom}");
    }

    #[test]
    fn true_anomaly_circular_equals_eccentric() {
        for ea in [0.1, 1.5, 4.0] {
            assert!((true_anomaly(ea, 0.0) - wrap_two_pi(ea)).abs() < 1e-12);
        }
    }

    proptest! {
        /// Kepler solver actually satisfies M = E - e sin E.
        #[test]
        fn kepler_residual_is_tiny(m in 0.0f64..std::f64::consts::TAU, e in 0.0f64..0.95) {
            let ea = solve_kepler(m, e);
            let residual = wrap_two_pi(ea - e * ea.sin()) - wrap_two_pi(m);
            // Compare modulo 2π.
            let r = residual.abs().min((residual.abs() - std::f64::consts::TAU).abs());
            prop_assert!(r < 1e-9, "residual {r}");
        }

        /// True anomaly and eccentric anomaly are in the same half-plane.
        #[test]
        fn true_anomaly_same_half(m in 0.0f64..std::f64::consts::TAU, e in 0.0f64..0.9) {
            let ea = solve_kepler(m, e);
            let nu = true_anomaly(ea, e);
            // sin(E) and sin(ν) share a sign for e < 1.
            prop_assert!(ea.sin() * nu.sin() >= -1e-9);
        }
    }
}
