//! Ground geometry: great-circle distances and the geodesic RTT baseline.
//!
//! The paper's Fig. 6 compares every connection's maximum RTT to its
//! "geodesic RTT": the time to travel back and forth between the end-points
//! at the speed of light in vacuum — the minimum achievable RTT.

use crate::frames::{geodetic_to_ecef, GeodeticPos};
use hypatia_util::constants::{C_FIBER_KM_PER_S, C_VACUUM_KM_PER_S, EARTH_RADIUS_KM};
use hypatia_util::SimDuration;

/// Great-circle (surface) distance between two geodetic points, km.
///
/// Computed via the chord → central-angle relation on the spherical model,
/// which is numerically stable at all separations.
pub fn great_circle_distance_km(a: GeodeticPos, b: GeodeticPos) -> f64 {
    let pa = geodetic_to_ecef(GeodeticPos::surface(a.latitude_deg, a.longitude_deg));
    let pb = geodetic_to_ecef(GeodeticPos::surface(b.latitude_deg, b.longitude_deg));
    let theta = pa.angle_to(pb);
    EARTH_RADIUS_KM * theta
}

/// The geodesic RTT between two points: `2 · d / c` (speed of light in
/// vacuum along the great circle).
pub fn geodesic_rtt(a: GeodeticPos, b: GeodeticPos) -> SimDuration {
    let d = great_circle_distance_km(a, b);
    SimDuration::from_secs_f64(2.0 * d / C_VACUUM_KM_PER_S)
}

/// RTT of an idealized straight terrestrial fiber path (`2 · d / (2c/3)`),
/// the paper's baseline for "today's Internet" latency comparisons.
pub fn fiber_rtt(a: GeodeticPos, b: GeodeticPos) -> SimDuration {
    let d = great_circle_distance_km(a, b);
    SimDuration::from_secs_f64(2.0 * d / C_FIBER_KM_PER_S)
}

/// One-way propagation delay over a straight line of `distance_km` at `c`.
pub fn propagation_delay_km(distance_km: f64) -> SimDuration {
    assert!(distance_km >= 0.0, "negative distance");
    SimDuration::from_secs_f64(distance_km / C_VACUUM_KM_PER_S)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn city(lat: f64, lon: f64) -> GeodeticPos {
        GeodeticPos::surface(lat, lon)
    }

    #[test]
    fn same_point_distance_zero() {
        let p = city(48.85, 2.35);
        assert!(great_circle_distance_km(p, p) < 1e-9);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let d = great_circle_distance_km(city(0.0, 0.0), city(0.0, 180.0));
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1e-6);
    }

    #[test]
    fn quarter_circumference_pole_to_equator() {
        let d = great_circle_distance_km(city(90.0, 0.0), city(0.0, 55.0));
        assert!((d - std::f64::consts::FRAC_PI_2 * EARTH_RADIUS_KM).abs() < 1e-6);
    }

    #[test]
    fn paris_to_moscow_is_about_2500km() {
        // Well-known value ~2480-2490 km.
        let d = great_circle_distance_km(city(48.8566, 2.3522), city(55.7558, 37.6173));
        assert!((2400.0..2600.0).contains(&d), "distance {d} km");
    }

    #[test]
    fn geodesic_rtt_for_known_distance() {
        // New York to London ≈ 5570 km → RTT ≈ 37.2 ms at c.
        let rtt = geodesic_rtt(city(40.7128, -74.0060), city(51.5074, -0.1278));
        let ms = rtt.secs_f64() * 1e3;
        assert!((35.0..40.0).contains(&ms), "geodesic RTT {ms} ms");
    }

    #[test]
    fn fiber_rtt_is_1_5x_geodesic() {
        let a = city(40.7, -74.0);
        let b = city(51.5, -0.13);
        let ratio = fiber_rtt(a, b).secs_f64() / geodesic_rtt(a, b).secs_f64();
        // Nanosecond rounding of SimDuration leaves a tiny residual.
        assert!((ratio - 1.5).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn propagation_delay_one_thousand_km() {
        let d = propagation_delay_km(1000.0);
        // 1000 km / 299792.458 km/s ≈ 3.336 ms.
        assert!((d.secs_f64() * 1e3 - 3.3356).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn distance_symmetric(lat1 in -89.0f64..89.0, lon1 in -180.0f64..180.0,
                              lat2 in -89.0f64..89.0, lon2 in -180.0f64..180.0) {
            let a = city(lat1, lon1);
            let b = city(lat2, lon2);
            prop_assert!((great_circle_distance_km(a, b)
                        - great_circle_distance_km(b, a)).abs() < 1e-9);
        }

        #[test]
        fn distance_bounded_by_half_circumference(lat1 in -89.0f64..89.0, lon1 in -180.0f64..180.0,
                                                  lat2 in -89.0f64..89.0, lon2 in -180.0f64..180.0) {
            let d = great_circle_distance_km(city(lat1, lon1), city(lat2, lon2));
            prop_assert!(d >= 0.0);
            prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-9);
        }
    }
}
