//! Coordinate frames: ECI ↔ ECEF ↔ geodetic.
//!
//! * **ECI** (Earth-centered inertial): where propagation happens.
//! * **ECEF** (Earth-centered, Earth-fixed): rotates with the Earth; ground
//!   stations are fixed here. ECI→ECEF is a rotation about Z by the Greenwich
//!   mean sidereal angle.
//! * **Geodetic**: latitude/longitude/altitude. Hypatia follows the TLE
//!   ecosystem's spherical-Earth convention by default (radius = WGS72
//!   equatorial); an ellipsoidal model is provided for comparison and is
//!   shown by tests to shift GS positions by < 25 km, far below the
//!   hundreds-km slant ranges that drive network behaviour.

use hypatia_util::angle::{deg_to_rad, rad_to_deg, wrap_pi};
use hypatia_util::constants::{EARTH_INV_FLATTENING, EARTH_RADIUS_KM, EARTH_ROTATION_RAD_PER_S};
use hypatia_util::{SimTime, Vec3};
use serde::{Deserialize, Serialize};

/// A geodetic position: degrees and kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeodeticPos {
    /// Latitude in degrees, positive north.
    pub latitude_deg: f64,
    /// Longitude in degrees, positive east, in `(-180, 180]`.
    pub longitude_deg: f64,
    /// Altitude above the reference surface, km.
    pub altitude_km: f64,
}

impl GeodeticPos {
    /// Position on the surface (altitude 0).
    pub fn surface(latitude_deg: f64, longitude_deg: f64) -> Self {
        assert!((-90.0..=90.0).contains(&latitude_deg), "bad latitude {latitude_deg}");
        GeodeticPos { latitude_deg, longitude_deg, altitude_km: 0.0 }
    }
}

/// Greenwich mean sidereal angle at simulation time `t`.
///
/// Hypatia's simulation epoch is defined to have GMST = 0 (the prime
/// meridian aligned with the ECI x-axis); constellations are specified
/// relative to that epoch, so an absolute calendar origin is unnecessary.
pub fn gmst_rad(t: SimTime) -> f64 {
    hypatia_util::angle::wrap_two_pi(EARTH_ROTATION_RAD_PER_S * t.secs_f64())
}

/// Rotate an ECI position into the ECEF frame at time `t`.
pub fn eci_to_ecef(pos_eci: Vec3, t: SimTime) -> Vec3 {
    pos_eci.rotate_z(-gmst_rad(t))
}

/// Rotate an ECEF position into the ECI frame at time `t`.
pub fn ecef_to_eci(pos_ecef: Vec3, t: SimTime) -> Vec3 {
    pos_ecef.rotate_z(gmst_rad(t))
}

/// Geodetic → ECEF on the spherical Earth (default model).
pub fn geodetic_to_ecef(pos: GeodeticPos) -> Vec3 {
    let lat = deg_to_rad(pos.latitude_deg);
    let lon = deg_to_rad(pos.longitude_deg);
    let r = EARTH_RADIUS_KM + pos.altitude_km;
    Vec3::new(r * lat.cos() * lon.cos(), r * lat.cos() * lon.sin(), r * lat.sin())
}

/// ECEF → geodetic on the spherical Earth.
pub fn ecef_to_geodetic(p: Vec3) -> GeodeticPos {
    let r = p.norm();
    assert!(r > 0.0, "cannot convert the origin to geodetic");
    GeodeticPos {
        latitude_deg: rad_to_deg((p.z / r).clamp(-1.0, 1.0).asin()),
        longitude_deg: rad_to_deg(wrap_pi(p.y.atan2(p.x))),
        altitude_km: r - EARTH_RADIUS_KM,
    }
}

/// Geodetic → ECEF on the WGS72 ellipsoid (for fidelity comparisons).
pub fn geodetic_to_ecef_ellipsoidal(pos: GeodeticPos) -> Vec3 {
    let lat = deg_to_rad(pos.latitude_deg);
    let lon = deg_to_rad(pos.longitude_deg);
    let f = 1.0 / EARTH_INV_FLATTENING;
    let e2 = f * (2.0 - f);
    let n = EARTH_RADIUS_KM / (1.0 - e2 * lat.sin().powi(2)).sqrt();
    let h = pos.altitude_km;
    Vec3::new(
        (n + h) * lat.cos() * lon.cos(),
        (n + h) * lat.cos() * lon.sin(),
        (n * (1.0 - e2) + h) * lat.sin(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypatia_util::constants::SIDEREAL_DAY_S;
    use proptest::prelude::*;

    #[test]
    fn gmst_is_zero_at_epoch_and_after_a_sidereal_day() {
        assert_eq!(gmst_rad(SimTime::ZERO), 0.0);
        let g = gmst_rad(SimTime::from_secs_f64(SIDEREAL_DAY_S));
        assert!(!(1e-4..=std::f64::consts::TAU - 1e-4).contains(&g), "gmst {g}");
    }

    #[test]
    fn eci_ecef_round_trip() {
        let p = Vec3::new(6500.0, 1000.0, -2000.0);
        let t = SimTime::from_secs(12345);
        let back = ecef_to_eci(eci_to_ecef(p, t), t);
        assert!(p.distance(back) < 1e-9);
    }

    #[test]
    fn equator_prime_meridian_is_x_axis() {
        let p = geodetic_to_ecef(GeodeticPos::surface(0.0, 0.0));
        assert!((p.x - EARTH_RADIUS_KM).abs() < 1e-9);
        assert!(p.y.abs() < 1e-9 && p.z.abs() < 1e-9);
    }

    #[test]
    fn north_pole_is_z_axis() {
        let p = geodetic_to_ecef(GeodeticPos::surface(90.0, 0.0));
        assert!((p.z - EARTH_RADIUS_KM).abs() < 1e-9);
        assert!(p.x.abs() < 1e-6 && p.y.abs() < 1e-9);
    }

    #[test]
    fn known_city_position() {
        // Paris: 48.86 N, 2.35 E. z = R sin(lat) ≈ 4803 km.
        let p = geodetic_to_ecef(GeodeticPos::surface(48.8566, 2.3522));
        assert!((p.z - EARTH_RADIUS_KM * deg_to_rad(48.8566).sin()).abs() < 1e-6);
        assert!(p.y > 0.0, "east longitude → positive y");
    }

    #[test]
    fn ellipsoidal_vs_spherical_offset_is_bounded() {
        // The flattening moves surface points by at most ~1/298 of the
        // radius (~21 km) — negligible against LEO slant ranges.
        for lat in [-80.0, -45.0, 0.0, 30.0, 60.0, 89.0] {
            let g = GeodeticPos::surface(lat, 17.0);
            let d = geodetic_to_ecef(g).distance(geodetic_to_ecef_ellipsoidal(g));
            assert!(d < 25.0, "offset {d} km at lat {lat}");
        }
    }

    #[test]
    fn earth_rotation_moves_ecef_position_of_inertial_point() {
        let p_eci = Vec3::new(7000.0, 0.0, 0.0);
        let a = eci_to_ecef(p_eci, SimTime::ZERO);
        let b = eci_to_ecef(p_eci, SimTime::from_secs(600));
        // In 10 minutes the Earth turns ~2.5°: an equatorial point moves ~300 km.
        let moved = a.distance(b);
        assert!((250.0..400.0).contains(&moved), "moved {moved} km");
    }

    proptest! {
        #[test]
        fn geodetic_round_trip(lat in -89.9f64..89.9, lon in -179.9f64..179.9,
                               alt in 0.0f64..2000.0) {
            let g = GeodeticPos { latitude_deg: lat, longitude_deg: lon, altitude_km: alt };
            let back = ecef_to_geodetic(geodetic_to_ecef(g));
            prop_assert!((back.latitude_deg - lat).abs() < 1e-9);
            prop_assert!((back.longitude_deg - lon).abs() < 1e-9);
            prop_assert!((back.altitude_km - alt).abs() < 1e-9);
        }

        #[test]
        fn ecef_norm_is_radius_plus_altitude(lat in -90.0f64..90.0, lon in -180.0f64..180.0,
                                             alt in 0.0f64..2000.0) {
            let g = GeodeticPos { latitude_deg: lat, longitude_deg: lon, altitude_km: alt };
            prop_assert!((geodetic_to_ecef(g).norm() - (EARTH_RADIUS_KM + alt)).abs() < 1e-9);
        }
    }
}
