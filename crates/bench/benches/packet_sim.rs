//! Macro-benchmark: end-to-end packet simulation throughput (events/s) —
//! the Rust analogue of the paper's Fig. 2 cost model, in Criterion form.
//! UDP and TCP single-flow runs over a reduced Kuiper-like shell, once per
//! event-queue implementation (`heap` vs `calendar`).

use criterion::{criterion_group, criterion_main, Criterion};
use hypatia_constellation::ground::GroundStation;
use hypatia_constellation::gsl::GslConfig;
use hypatia_constellation::isl::IslLayout;
use hypatia_constellation::shell::ShellSpec;
use hypatia_constellation::Constellation;
use hypatia_netsim::apps::{UdpSink, UdpSource};
use hypatia_netsim::{QueueKind, SimConfig, Simulator};
use hypatia_transport::{NewReno, TcpConfig, TcpSender, TcpSink};
use hypatia_util::{DataRate, SimTime};
use std::hint::black_box;
use std::sync::Arc;

fn constellation() -> Arc<Constellation> {
    Arc::new(Constellation::build(
        "bench",
        vec![ShellSpec::new("K", 630.0, 12, 12, 51.9)],
        IslLayout::PlusGrid,
        vec![GroundStation::new("a", 10.0, 10.0), GroundStation::new("b", -5.0, 60.0)],
        GslConfig::new(10.0),
    ))
}

fn bench_packet_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_sim");
    group.sample_size(10);

    let constellation = constellation();

    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let config =
            || SimConfig::default().with_link_rate(DataRate::from_mbps(10)).with_queue(kind);

        group.bench_function(format!("udp_flow_2s_10mbps/{}", kind.name()), |b| {
            b.iter(|| {
                let cst = constellation.clone();
                let (src, dst) = (cst.gs_node(0), cst.gs_node(1));
                let mut sim = Simulator::new(cst, config(), vec![src, dst]);
                sim.add_app(dst, 50, Box::new(UdpSink::new()));
                sim.add_app(
                    src,
                    50,
                    Box::new(UdpSource::new(
                        dst,
                        0,
                        DataRate::from_mbps(10),
                        1440,
                        SimTime::from_secs(2),
                    )),
                );
                sim.run_until(SimTime::from_secs(2));
                black_box(sim.stats.events)
            })
        });

        group.bench_function(format!("tcp_flow_2s_10mbps/{}", kind.name()), |b| {
            b.iter(|| {
                let cst = constellation.clone();
                let (src, dst) = (cst.gs_node(0), cst.gs_node(1));
                let mut sim = Simulator::new(cst, config(), vec![src, dst]);
                let cfg = TcpConfig::default();
                sim.add_app(dst, 80, Box::new(TcpSink::new(cfg.clone())));
                sim.add_app(
                    src,
                    70,
                    Box::new(TcpSender::new(dst, 80, cfg, Box::new(NewReno::new()))),
                );
                sim.run_until(SimTime::from_secs(2));
                black_box(sim.stats.events)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_packet_sim);
criterion_main!(benches);
