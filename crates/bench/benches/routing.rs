//! Micro-benchmark / ablation: per-destination Dijkstra vs the paper's
//! Floyd–Warshall for forwarding-state computation (DESIGN.md §4).
//!
//! On constellation-scale graphs Dijkstra-per-destination wins by orders
//! of magnitude while producing identical state (property-tested in
//! `hypatia-routing`); Floyd–Warshall is benchmarked on a reduced shell —
//! O(n³) at n = 1256 would dominate the whole suite.

use criterion::{criterion_group, criterion_main, Criterion};
use hypatia_constellation::ground::top_cities;
use hypatia_constellation::gsl::GslConfig;
use hypatia_constellation::isl::IslLayout;
use hypatia_constellation::shell::ShellSpec;
use hypatia_constellation::Constellation;
use hypatia_routing::dijkstra::shortest_path_tree;
use hypatia_routing::floyd_warshall::floyd_warshall;
use hypatia_routing::graph::DelayGraph;
use hypatia_util::SimTime;
use std::hint::black_box;

fn kuiper_like(orbits: u32, per: u32, cities: usize) -> Constellation {
    Constellation::build(
        "bench",
        vec![ShellSpec::new("K", 630.0, orbits, per, 51.9)],
        IslLayout::PlusGrid,
        top_cities(cities),
        GslConfig::new(30.0),
    )
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    group.sample_size(10);

    // Full Kuiper K1 scale for the production path.
    let full = kuiper_like(34, 34, 100);
    let graph_full = DelayGraph::snapshot(&full, SimTime::ZERO);
    group.bench_function("snapshot_graph_kuiper_k1", |b| {
        b.iter(|| black_box(DelayGraph::snapshot(&full, SimTime::from_secs(30))))
    });
    group.bench_function("dijkstra_one_dest_kuiper_k1", |b| {
        let dst = full.gs_node(0).0;
        b.iter(|| black_box(shortest_path_tree(&graph_full, dst)))
    });

    // Reduced shell where Floyd–Warshall is feasible: same result, other cost.
    let small = kuiper_like(8, 8, 10);
    let graph_small = DelayGraph::snapshot(&small, SimTime::ZERO);
    group.bench_function("dijkstra_all_dests_8x8", |b| {
        b.iter(|| {
            for gs in 0..small.num_ground_stations() {
                black_box(shortest_path_tree(&graph_small, small.gs_node(gs).0));
            }
        })
    });
    group.bench_function("floyd_warshall_8x8", |b| {
        b.iter(|| black_box(floyd_warshall(&graph_small)))
    });

    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
