//! Micro-benchmark: the discrete-event queue (ablation for DESIGN.md's
//! integer-time/total-order decision). Event throughput bounds the whole
//! simulator: the paper notes "the simulation is bottlenecked at
//! per-packet event processing".
//!
//! Every pattern runs once per queue implementation (`heap` vs
//! `calendar`), so the calendar-queue speedup is read directly off the
//! Criterion report.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypatia_netsim::event::{Event, EventQueue, QueueKind};
use hypatia_util::SimTime;
use std::hint::black_box;

const KINDS: [QueueKind; 2] = [QueueKind::Heap, QueueKind::Calendar];

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");

    for kind in KINDS {
        group.bench_function(format!("schedule_pop_10k_fifo/{}", kind.name()), |b| {
            b.iter_batched(
                || EventQueue::with_kind(kind),
                |mut q| {
                    for i in 0..10_000u64 {
                        q.schedule(
                            SimTime::from_nanos(i * 100),
                            Event::ForwardingUpdate { step: i },
                        );
                    }
                    while let Some(e) = q.pop() {
                        black_box(e);
                    }
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_function(format!("schedule_pop_10k_reverse/{}", kind.name()), |b| {
            b.iter_batched(
                || EventQueue::with_kind(kind),
                |mut q| {
                    for i in 0..10_000u64 {
                        q.schedule(
                            SimTime::from_nanos((10_000 - i) * 100),
                            Event::ForwardingUpdate { step: i },
                        );
                    }
                    while let Some(e) = q.pop() {
                        black_box(e);
                    }
                },
                BatchSize::SmallInput,
            )
        });

        group.bench_function(format!("interleaved_steady_state/{}", kind.name()), |b| {
            // Steady-state pattern of a running simulation: pop one, push one.
            let mut q = EventQueue::with_kind(kind);
            for i in 0..1_000u64 {
                q.schedule(SimTime::from_nanos(i * 1_000), Event::ForwardingUpdate { step: i });
            }
            let mut t = 1_000_000u64;
            b.iter(|| {
                let (at, e) = q.pop().expect("queue kept warm");
                black_box((at, e));
                q.schedule(SimTime::from_nanos(t), Event::ForwardingUpdate { step: 0 });
                t += 1_000;
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
