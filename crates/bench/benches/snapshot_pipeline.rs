//! Micro-benchmark: the snapshot-routing pipeline (DESIGN.md §5).
//!
//! Three ways to compute the same sequence of forwarding states:
//!
//! * `serial_alloc` — the convenience API: fresh graph, scratch and state
//!   allocated every time-step (what the sweeps did before the pipeline);
//! * `serial_reuse` — one `SnapshotBuffers` + `DijkstraScratch` + output
//!   state reused across all steps (CSR rebuild in place, zero steady-state
//!   allocation);
//! * `parallel_4` — the ordered worker pool fanning the same steps across
//!   4 threads (`sweep_forwarding_states`), bit-identical output.
//!
//! The shell is reduced so one iteration stays in the tens of milliseconds;
//! the relative ordering (reuse ≥ alloc, parallel ≈ reuse / threads) is
//! what matters, and it is scale-independent.

use criterion::{criterion_group, criterion_main, Criterion};
use hypatia_constellation::ground::top_cities;
use hypatia_constellation::gsl::GslConfig;
use hypatia_constellation::isl::IslLayout;
use hypatia_constellation::shell::ShellSpec;
use hypatia_constellation::Constellation;
use hypatia_routing::forwarding::{
    compute_forwarding_state_into, compute_forwarding_state_on, ForwardingState,
};
use hypatia_routing::graph::{DelayGraph, SnapshotBuffers};
use hypatia_routing::parallel::sweep_forwarding_states;
use hypatia_routing::DijkstraScratch;
use hypatia_util::{SimDuration, SimTime};
use std::hint::black_box;

fn kuiper_like(orbits: u32, per: u32, cities: usize) -> Constellation {
    Constellation::build(
        "bench",
        vec![ShellSpec::new("K", 630.0, orbits, per, 51.9)],
        IslLayout::PlusGrid,
        top_cities(cities),
        GslConfig::new(30.0),
    )
}

fn bench_snapshot_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_pipeline");
    group.sample_size(10);

    let constellation = kuiper_like(16, 16, 20);
    let dests: Vec<_> =
        (0..constellation.num_ground_stations()).map(|i| constellation.gs_node(i)).collect();
    let step = SimDuration::from_millis(100);
    let times: Vec<SimTime> = (0..24).map(|k| SimTime::ZERO + step * k).collect();

    group.bench_function("serial_alloc_24_steps", |b| {
        b.iter(|| {
            for &t in &times {
                let graph = DelayGraph::snapshot(&constellation, t);
                black_box(compute_forwarding_state_on(&graph, t, &dests));
            }
        })
    });

    group.bench_function("serial_reuse_24_steps", |b| {
        let mut buffers = SnapshotBuffers::default();
        let mut scratch = DijkstraScratch::new();
        let mut state = ForwardingState::empty();
        b.iter(|| {
            for &t in &times {
                let graph = buffers.snapshot(&constellation, t);
                compute_forwarding_state_into(graph, t, &dests, &mut scratch, &mut state);
                black_box(&state);
            }
        })
    });

    group.bench_function("parallel_4_24_steps", |b| {
        b.iter(|| {
            sweep_forwarding_states(&constellation, &times, &dests, 4, |_, state| {
                black_box(&state);
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_snapshot_pipeline);
criterion_main!(benches);
