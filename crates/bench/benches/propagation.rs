//! Micro-benchmark / ablation: per-packet live-geometry delay vs a static
//! delay (DESIGN.md §4). The paper's simulator computes every hop's
//! propagation delay from satellite motion at transmit time; this measures
//! the cost of that fidelity choice — orbit propagation + frame rotation
//! per query.

use criterion::{criterion_group, criterion_main, Criterion};
use hypatia_constellation::ground::top_cities;
use hypatia_constellation::presets;
use hypatia_constellation::NodeId;
use hypatia_orbit::kepler::KeplerianElements;
use hypatia_orbit::propagate::Propagator;
use hypatia_util::SimTime;
use std::hint::black_box;

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");

    let el = KeplerianElements::circular(630.0, 51.9, 73.0, 211.0);
    let two_body = Propagator::two_body(el);
    let j2 = Propagator::j2(el);

    group.bench_function("two_body_position", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(two_body.position_at(SimTime::from_millis(t)))
        })
    });

    group.bench_function("j2_position", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(j2.position_at(SimTime::from_millis(t)))
        })
    });

    // The simulator's actual hot call: node-to-node distance at `now`.
    let constellation = presets::kuiper_k1(top_cities(10));
    let (a, b_node) = constellation.isls[123];
    group.bench_function("live_isl_distance", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(constellation.distance_km(NodeId(a), NodeId(b_node), SimTime::from_millis(t)))
        })
    });

    // The static alternative: one precomputed snapshot lookup.
    let positions = constellation.positions_at(SimTime::ZERO);
    group.bench_function("static_distance_lookup", |b| {
        b.iter(|| black_box(positions[a as usize].distance(positions[b_node as usize])))
    });

    // Whole-constellation snapshot (the per-time-step cost of routing).
    group.bench_function("positions_snapshot_kuiper_k1", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 100;
            black_box(constellation.positions_at(SimTime::from_millis(t)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
