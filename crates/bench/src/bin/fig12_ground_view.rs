//! Fig. 12 — the ground observer's view from St. Petersburg over Kuiper K1.
//!
//! Scans for connected and disconnected instants, renders both as ASCII
//! sky panoramas (azimuth × elevation, `#` connectable / `.` below the
//! minimum elevation), and reports the connectivity windows behind the
//! Fig. 3(a) outage.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig12_ground_view");
}
