//! Fig. 12 — the ground observer's view from St. Petersburg over Kuiper K1.
//!
//! Scans for connected and disconnected instants, renders both as ASCII
//! sky panoramas (azimuth × elevation, `#` connectable / `.` below the
//! minimum elevation), and reports the connectivity windows behind the
//! Fig. 3(a) outage.

use hypatia::scenario::ConstellationChoice;
use hypatia_bench::{banner, BenchArgs};
use hypatia_constellation::GroundStation;
use hypatia_util::SimDuration;
use hypatia_viz::ground_view::{connectivity_windows, GroundView};

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 12", "Ground observer view: St. Petersburg over Kuiper K1", &args);

    let gs = GroundStation::new("Saint Petersburg", 59.9311, 30.3609);
    let c = ConstellationChoice::KuiperK1.build(vec![gs.clone()]);

    let horizon = if args.full {
        SimDuration::from_secs(1200)
    } else {
        SimDuration::from_secs(600)
    };
    let windows = connectivity_windows(&c, &gs, horizon, SimDuration::from_secs(5));

    println!("connectivity windows over {:.0} s:", horizon.secs_f64());
    for w in &windows {
        println!(
            "  {:>7.1}s – {:>7.1}s : {}",
            w.from.secs_f64(),
            w.until.secs_f64(),
            if w.connected { "CONNECTED" } else { "no satellite above 30°" }
        );
    }
    let disconnected: f64 = windows
        .iter()
        .filter(|w| !w.connected)
        .map(|w| w.until.since(w.from).secs_f64())
        .sum();
    println!(
        "total disconnected: {disconnected:.0} s ({:.0}% of horizon)",
        disconnected / horizon.secs_f64() * 100.0
    );

    // Render one connected and one disconnected snapshot, as in the figure.
    let connected_at = windows.iter().find(|w| w.connected).map(|w| w.from);
    let disconnected_at = windows.iter().find(|w| !w.connected).map(|w| w.from);
    for (label, at) in [("connected", connected_at), ("disconnected", disconnected_at)] {
        match at {
            Some(t) => {
                let view = GroundView::compute(&c, &gs, t);
                let art = view.render_ascii(100, 16);
                println!("\n--- {label} snapshot ---\n{art}");
                args.write_text(&format!("fig12_{label}.txt"), &art);
                args.write_text(
                    &format!("fig12_{label}.json"),
                    &serde_json::to_string_pretty(&view.to_json()).expect("json"),
                );
            }
            None => println!("\n(no {label} instant within the horizon)"),
        }
    }

    println!("Check: St. Petersburg (59.93°N) is intermittently reachable from");
    println!("K1's 51.9°-inclination shell — the Fig. 3(a) outage mechanism.");
}
