//! Extension study — path diversity for multi-path routing / TE.
//!
//! The paper's §5.4 takeaway: traffic could be shifted away from links
//! about to become bottlenecks, and §6 points at "substantial value in
//! using non-shortest path and multi-path routing" across hot regions.
//! This study quantifies the raw material for that: how close are the
//! K shortest alternates to the shortest path, and how disjoint are they?
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("ext_multipath_diversity");
}
