//! Fig. 11 — constellation trajectory visualizations.
//!
//! Emits Cesium-loadable CZML for Telesat T1, Kuiper K1 and Starlink S1,
//! and prints coverage summaries (satellites over high latitudes vs the
//! tropics) that capture the figure's visual point: Telesat's 98.98°
//! inclination covers the poles, the others concentrate density at the
//! latitudes where people live.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig11_constellation_czml");
}
