//! Fig. 11 — constellation trajectory visualizations.
//!
//! Emits Cesium-loadable CZML for Telesat T1, Kuiper K1 and Starlink S1,
//! and prints coverage summaries (satellites over high latitudes vs the
//! tropics) that capture the figure's visual point: Telesat's 98.98°
//! inclination covers the poles, the others concentrate density at the
//! latitudes where people live.

use hypatia::scenario::ConstellationChoice;
use hypatia_bench::{banner, BenchArgs};
use hypatia_orbit::frames::ecef_to_geodetic;
use hypatia_util::SimTime;
use hypatia_viz::czml::{constellation_czml, to_json_string, CzmlOptions};

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 11", "Constellation trajectories (CZML export)", &args);

    let opts = if args.full {
        CzmlOptions {
            sample_interval: hypatia_util::SimDuration::from_secs(10),
            duration: hypatia_util::SimDuration::from_secs(6000),
            pixel_size: 3,
        }
    } else {
        CzmlOptions::default()
    };

    for choice in [
        ConstellationChoice::TelesatT1,
        ConstellationChoice::KuiperK1,
        ConstellationChoice::StarlinkS1,
    ] {
        let c = choice.build(vec![]);
        let czml = constellation_czml(&c, &opts);
        let slug = choice.name().to_lowercase().replace(' ', "_");
        args.write_text(&format!("fig11_{slug}.czml"), &to_json_string(&czml));

        // Latitude histogram at t = 0 — the figure's visual takeaway.
        let mut polar = 0usize; // |lat| > 60°
        let mut temperate = 0usize; // 30° < |lat| <= 60°
        let mut tropical = 0usize; // |lat| <= 30°
        for i in 0..c.num_satellites() {
            let lat = ecef_to_geodetic(c.sat_position_ecef(i, SimTime::ZERO)).latitude_deg.abs();
            if lat > 60.0 {
                polar += 1;
            } else if lat > 30.0 {
                temperate += 1;
            } else {
                tropical += 1;
            }
        }
        println!(
            "{:<14} {:>5} sats | polar(>60°): {:>4}  temperate(30-60°): {:>4}  tropical(<=30°): {:>4}",
            choice.name(),
            c.num_satellites(),
            polar,
            temperate,
            tropical
        );
    }

    println!();
    println!("Check: only Telesat T1 places satellites above 60° latitude;");
    println!("Kuiper/Starlink concentrate where the population lives.");
}
