//! Fig. 2 — simulator scalability: slowdown vs network-wide goodput.
//!
//! Paper setup: Kuiper K1, 100 most populous cities, random-permutation
//! traffic, TCP and UDP, line rates swept from 1 Mbit/s to 10 Gbit/s, on
//! one core. We report the same series; absolute slowdown depends on the
//! host CPU, the shape (slowdown ∝ goodput; TCP ≈ 2× UDP) is the result.

use hypatia::experiments::scalability::{sweep, Workload};
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_bench::{banner, BenchArgs};
use hypatia_util::{DataRate, SimDuration};

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 2", "Scalability: slowdown vs goodput (TCP and UDP)", &args);

    let (cities, virtual_secs, rates): (usize, u64, Vec<DataRate>) = if args.full {
        (
            100,
            1,
            vec![
                DataRate::from_mbps(1),
                DataRate::from_mbps(10),
                DataRate::from_mbps(25),
                DataRate::from_mbps(100),
                DataRate::from_mbps(250),
                DataRate::from_gbps(1),
                DataRate::from_gbps(10),
            ],
        )
    } else {
        (
            30,
            1,
            vec![DataRate::from_mbps(1), DataRate::from_mbps(10), DataRate::from_mbps(25)],
        )
    };

    let scenario = ScenarioBuilder::new(ConstellationChoice::KuiperK1)
        .top_cities(cities)
        .build();
    let duration = SimDuration::from_secs(virtual_secs);

    println!(
        "{:<9} {:>12} {:>16} {:>14} {:>14}",
        "workload", "line rate", "goodput (Gbps)", "slowdown (x)", "events"
    );
    for workload in [Workload::Udp, Workload::Tcp] {
        let points = sweep(&scenario, workload, &rates, duration, 2020);
        let series: Vec<(f64, f64)> =
            points.iter().map(|p| (p.goodput_gbps, p.slowdown)).collect();
        for p in &points {
            println!(
                "{:<9} {:>12} {:>16.4} {:>14.1} {:>14}",
                p.workload.name(),
                format!("{}", p.line_rate),
                p.goodput_gbps,
                p.slowdown,
                p.events
            );
        }
        args.write_series(
            &format!("fig02_slowdown_{}.dat", workload.name().to_lowercase()),
            "goodput_gbps slowdown",
            &series,
        );
        // The paper's key observation: slowdown grows with goodput.
        if points.len() >= 2 {
            let first = &points[0];
            let last = &points[points.len() - 1];
            println!(
                "  -> {}: goodput x{:.1} => slowdown x{:.1}",
                workload.name(),
                last.goodput_gbps / first.goodput_gbps,
                last.slowdown / first.slowdown
            );
        }
    }
}
