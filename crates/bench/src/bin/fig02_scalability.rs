//! Fig. 2 — simulator scalability: slowdown vs network-wide goodput.
//!
//! Paper setup: Kuiper K1, 100 most populous cities, random-permutation
//! traffic, TCP and UDP, line rates swept from 1 Mbit/s to 10 Gbit/s, on
//! one core. We report the same series; absolute slowdown depends on the
//! host CPU, the shape (slowdown ∝ goodput; TCP ≈ 2× UDP) is the result.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig02_scalability");
}
