//! Fig. 9 — forwarding-state granularity: what coarser time-steps miss.
//!
//! Expected shape (paper §5.3): 100 ms sees roughly 2× the changes per
//! step of 50 ms and misses changes for a negligible share of pairs
//! (~0.4%); 1000 ms misses one or more changes for a substantial share
//! (~6%).
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig09_timestep");
}
