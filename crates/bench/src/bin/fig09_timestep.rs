//! Fig. 9 — forwarding-state granularity: what coarser time-steps miss.
//!
//! Expected shape (paper §5.3): 100 ms sees roughly 2× the changes per
//! step of 50 ms and misses changes for a negligible share of pairs
//! (~0.4%); 1000 ms misses one or more changes for a substantial share
//! (~6%).

use hypatia::experiments::granularity::{run, GranularityConfig};
use hypatia::scenario::ConstellationChoice;
use hypatia_bench::{banner, BenchArgs};
use hypatia_constellation::ground::top_cities;
use hypatia_util::SimDuration;
use hypatia_viz::csv::ecdf;

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 9", "Time-step granularity for forwarding updates (Kuiper K1)", &args);

    let (cities, cfg) = if args.full {
        (
            100,
            GranularityConfig {
                duration: SimDuration::from_secs(200),
                fine_step: SimDuration::from_millis(50),
                coarse_multiples: vec![2, 20],
                min_pair_distance_km: 500.0,
                threads: 0,
            },
        )
    } else {
        (
            20,
            GranularityConfig {
                duration: SimDuration::from_secs(60),
                fine_step: SimDuration::from_millis(250),
                coarse_multiples: vec![2, 20],
                min_pair_distance_km: 500.0,
                threads: 0,
            },
        )
    };

    let c = ConstellationChoice::KuiperK1.build(top_cities(cities));
    let r = run(&c, &cfg);

    println!("pairs analysed: {}", r.pairs);
    println!(
        "{:>12} {:>16} {:>18} {:>18}",
        "step (ms)", "total changes", "frac miss >=1", "frac miss >=2"
    );
    for s in &r.stats {
        println!(
            "{:>12} {:>16} {:>18.4} {:>18.4}",
            s.step.millis(),
            s.total_changes(),
            s.fraction_missing_at_least(1),
            s.fraction_missing_at_least(2)
        );
        let slug = format!("{}ms", s.step.millis());
        let per_step: Vec<f64> = s.changes_per_step.iter().map(|&c| c as f64).collect();
        args.write_series(
            &format!("fig09a_changes_per_step_{slug}.dat"),
            "changes_in_step ecdf",
            &ecdf(&per_step),
        );
        let missed: Vec<f64> = s.missed_per_pair.iter().map(|&m| m as f64).collect();
        args.write_series(
            &format!("fig09b_missed_per_pair_{slug}.dat"),
            "missed_changes ecdf",
            &ecdf(&missed),
        );
    }

    let fine = r.stats[0].total_changes() as f64;
    println!();
    for s in &r.stats[1..] {
        let factor = s.step.nanos() as f64 / r.stats[0].step.nanos() as f64;
        println!(
            "step x{factor:.0}: observed {:.2}x the per-step change count (ideal {factor:.0}x), \
             missed {:.1}% of fine-grained changes",
            s.total_changes() as f64 / (fine / factor).max(1.0),
            (1.0 - s.total_changes() as f64 / fine.max(1.0)) * 100.0
        );
    }
    println!();
    println!("Paper's conclusion: 100 ms is a good compromise; 1000 ms misses");
    println!("a substantial number of changes for some pairs.");
}
