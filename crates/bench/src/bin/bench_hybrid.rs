//! Hybrid fluid/packet probe for `scripts/bench_fluid.sh`.
//!
//! Runs ONE point of the `ext_hybrid_mode` gravity workload — a single
//! (flow count, simulation mode) pair — and prints one JSON object to
//! stdout. One point per process keeps the wall-clock numbers honest
//! (no cross-mode allocator warm-up) and matches the other bench
//! probes. The wrapper script loops flow counts × modes and collects
//! the lines into `BENCH_fluid.json`.
//!
//! ```text
//! bench_hybrid [--flows N] [--mode packet|fluid|hybrid] [--cities N]
//!              [--flow-rate-kbps R] [--fluid-threshold-kbps X]
//!              [--duration-s S] [--seed N] [--shards N]
//! ```

use hypatia::experiments::hybrid::run_hybrid_point;
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_netsim::SimMode;
use hypatia_util::{DataRate, SimDuration};

struct Args {
    flows: u64,
    mode: SimMode,
    cities: usize,
    flow_rate_kbps: f64,
    fluid_threshold_kbps: f64,
    duration_s: f64,
    seed: u64,
    shards: usize,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        flows: 1000,
        mode: SimMode::Hybrid,
        cities: 100,
        flow_rate_kbps: 256.0,
        fluid_threshold_kbps: 0.0,
        duration_s: 2.0,
        seed: 2020,
        shards: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--flows" => {
                parsed.flows = value("--flows").parse().expect("--flows: positive integer");
                assert!(parsed.flows >= 1, "--flows: positive integer");
            }
            "--mode" => {
                let v = value("--mode");
                parsed.mode = SimMode::parse(&v)
                    .unwrap_or_else(|| panic!("unknown mode {v:?} (packet|fluid|hybrid)"));
            }
            "--cities" => parsed.cities = value("--cities").parse().expect("--cities: integer"),
            "--flow-rate-kbps" => {
                parsed.flow_rate_kbps =
                    value("--flow-rate-kbps").parse().expect("--flow-rate-kbps: number")
            }
            "--fluid-threshold-kbps" => {
                parsed.fluid_threshold_kbps =
                    value("--fluid-threshold-kbps").parse().expect("--fluid-threshold-kbps: number")
            }
            "--duration-s" => {
                parsed.duration_s = value("--duration-s").parse().expect("--duration-s: seconds")
            }
            "--seed" => parsed.seed = value("--seed").parse().expect("--seed: integer"),
            "--shards" => {
                parsed.shards = value("--shards").parse().expect("--shards: positive integer");
                assert!(parsed.shards >= 1, "--shards: positive integer");
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut scenario =
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(args.cities).build();
    scenario.sim_config.sim_shards = args.shards;

    let rate = DataRate::from_bps((args.flow_rate_kbps * 1e3).round() as u64);
    let threshold = DataRate::from_bps((args.fluid_threshold_kbps * 1e3).round() as u64);
    let duration = SimDuration::from_secs_f64(args.duration_s);
    let p =
        run_hybrid_point(&scenario, args.flows, args.mode, rate, threshold, duration, args.seed);
    // Hand-rolled JSON: every field is a number or a known-safe token.
    println!(
        "{{\"flows\":{},\"mode\":\"{}\",\"cities\":{},\"flow_rate_kbps\":{},\
         \"fluid_threshold_kbps\":{},\"duration_s\":{},\"seed\":{},\"sim_shards\":{},\
         \"events\":{},\"wall_s\":{:.6},\"events_per_sec\":{},\"goodput_gbps\":{:.6},\
         \"jain\":{:.6},\"fluid_flows\":{},\"fluid_resolves\":{},\"ping_rtts\":{}}}",
        p.flows,
        p.mode.name(),
        args.cities,
        args.flow_rate_kbps,
        args.fluid_threshold_kbps,
        args.duration_s,
        args.seed,
        p.engine.sim_shards,
        p.events,
        p.wall_s,
        p.events_per_sec.round() as u64,
        p.goodput_gbps,
        p.jain,
        p.fluid_flows,
        p.fluid_resolves,
        p.ping_rtts,
    );
}
