//! Fig. 8 — path-structure evolution: (a) number of path changes per pair,
//! (b) hop-count difference, (c) hop-count ratio, as ECDFs per
//! constellation.
//!
//! Expected shape: Telesat's paths change less than Kuiper's/Starlink's
//! (median 2 vs 4 changes over 200 s in the paper); Starlink shows the
//! largest hop-count spreads (>1/3 of pairs with ≥2 extra hops).
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig08_path_hop_cdfs");
}
