//! Fig. 3 — RTT fluctuations on Kuiper K1 for the paper's three pairs:
//! Rio de Janeiro → St. Petersburg, Manila → Dalian, Istanbul → Nairobi.
//!
//! Prints the min/max computed RTT, the disconnection time (the
//! St. Petersburg outage), and the ping-vs-computed agreement, and writes
//! both series per pair.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig03_rtt_fluctuations");
}
