//! Fig. 3 — RTT fluctuations on Kuiper K1 for the paper's three pairs:
//! Rio de Janeiro → St. Petersburg, Manila → Dalian, Istanbul → Nairobi.
//!
//! Prints the min/max computed RTT, the disconnection time (the
//! St. Petersburg outage), and the ping-vs-computed agreement, and writes
//! both series per pair.

use hypatia::experiments::rtt_fluctuations::{run, RttFluctuationConfig};
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_bench::{banner, BenchArgs};
use hypatia_util::SimDuration;

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 3", "RTT fluctuations: pings vs computed (Kuiper K1)", &args);

    let cfg = if args.full {
        RttFluctuationConfig {
            duration: SimDuration::from_secs(200),
            ping_interval: SimDuration::from_millis(1),
        }
    } else {
        RttFluctuationConfig {
            duration: SimDuration::from_secs(60),
            ping_interval: SimDuration::from_millis(20),
        }
    };

    let pairs = [
        ("Rio de Janeiro", "Saint Petersburg", "rio_stpetersburg"),
        ("Manila", "Dalian", "manila_dalian"),
        ("Istanbul", "Nairobi", "istanbul_nairobi"),
    ];

    let scenario =
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(100).build();

    println!(
        "{:<36} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "pair", "min (ms)", "max (ms)", "ratio", "outage (s)", "pings rx/tx"
    );
    for (src, dst, slug) in pairs {
        let r = run(&scenario, src, dst, &cfg);
        println!(
            "{:<36} {:>10.1} {:>10.1} {:>8.2} {:>12.1} {:>7}/{}",
            format!("{src} -> {dst}"),
            r.min_computed_ms,
            r.max_computed_ms,
            r.max_computed_ms / r.min_computed_ms,
            r.disconnected_seconds,
            r.received,
            r.sent
        );
        args.write_series(&format!("fig03_{slug}_pings.dat"), "t_s rtt_ms", &r.ping_series);
        args.write_series(
            &format!("fig03_{slug}_computed.dat"),
            "t_s rtt_ms",
            &r.computed_series,
        );
    }
    println!();
    println!("Paper's qualitative checks:");
    println!("  * Manila–Dalian RTT varies ~2x over time (paper: 25–48 ms).");
    println!("  * Istanbul–Nairobi varies between ~47–70 ms.");
    println!("  * Rio–St.Petersburg shows a disconnection window (St. Petersburg");
    println!("    has no visible Kuiper satellite at sufficient elevation).");
}
