//! Figs. 16–19 (Appendix A) — ISL vs bent-pipe connectivity,
//! Paris → Moscow over Kuiper K1.
//!
//! Expected shapes: bent-pipe paths alternate satellite/ground-relay and
//! carry ~5 ms more RTT (Fig. 18c); TCP over bent-pipe shows a noisier
//! congestion window (ACKs queue behind data at the shared satellite GSL
//! device) and modestly lower throughput (Fig. 19).
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig16_19_bent_pipe");
}
