//! Figs. 14 & 15 — link-utilization visualization under cross-traffic.
//!
//! Fig. 14: utilization along one pair's path (Chicago → Zhengzhou) at two
//! instants, showing congestion shifting even with static input traffic.
//! Fig. 15: the constellation-wide utilization map with its hotspots (the
//! paper highlights the trans-Atlantic corridor).
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig14_15_utilization");
}
