//! Extension study — does loop-free multipath actually relieve hotspots?
//!
//! The paper's §5.4/§6 TE takeaway, tested end-to-end: run the same
//! cross-traffic workload (Fig. 10's permutation TCP matrix) with single
//! shortest-path forwarding and with downhill-alternate multipath
//! (stretch 1.2), then compare hotspot utilization and total goodput.

use hypatia::experiments::cross_traffic::{run, CrossTrafficConfig};
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_bench::{banner, BenchArgs};
use hypatia_netsim::SimConfig;
use hypatia_util::{DataRate, SimDuration, SimTime};
use hypatia_viz::util_viz::{isl_utilization_map, summarize, top_hotspots};

fn main() {
    let args = BenchArgs::parse();
    banner("Extension", "Loop-free multipath vs single-path TE (Kuiper K1)", &args);

    let (cities, duration) = if args.full {
        (100, SimDuration::from_secs(200))
    } else {
        (30, SimDuration::from_secs(60))
    };
    let snapshot_sec = duration.secs_f64() as u64 - 10;

    let scenario = ScenarioBuilder::new(ConstellationChoice::KuiperK1)
        .top_cities(cities)
        .sim_config(
            SimConfig::default()
                .with_link_rate(DataRate::from_mbps(10))
                .with_utilization_bucket(SimDuration::from_secs(1)),
        )
        .build();

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>14}",
        "forwarding", "goodput", "mean util", "links >90%", "active links"
    );
    let mut rows = Vec::new();
    for (label, stretch) in [("single shortest path", None), ("multipath (1.2x)", Some(1.2))] {
        eprintln!("  running {label}...");
        let r = run(
            &scenario,
            "Tokyo",
            "Sao Paulo",
            &CrossTrafficConfig { duration, seed: 1, frozen: false, multipath_stretch: stretch },
        );
        let map = isl_utilization_map(&r.sim, snapshot_sec as usize, SimTime::from_secs(snapshot_sec));
        let s = summarize(&map);
        let hot = map.iter().filter(|l| l.utilization > 0.9).count();
        println!(
            "{:<22} {:>7.1}Mb {:>12.4} {:>12} {:>14}",
            label, r.total_goodput_mbps, s.mean, hot, s.active_links
        );
        let _ = top_hotspots(&map, 1);
        rows.push((label, r.total_goodput_mbps, hot, s.active_links));
    }

    println!();
    let (sp, mp) = (&rows[0], &rows[1]);
    println!(
        "multipath spreads load over {} vs {} links and changes >90%-utilized links {} -> {}",
        mp.3, sp.3, sp.2, mp.2
    );
    println!(
        "goodput: {:.1} -> {:.1} Mbit/s ({})",
        sp.1,
        mp.1,
        if mp.1 >= sp.1 * 0.95 { "no tax" } else { "note: stretch costs some goodput" }
    );
    println!("Takeaway: downhill alternates add loop-free capacity exactly where");
    println!("the paper's Fig. 15 shows shortest-path concentration.");
}
