//! Extension study — does loop-free multipath actually relieve hotspots?
//!
//! The paper's §5.4/§6 TE takeaway, tested end-to-end: run the same
//! cross-traffic workload (Fig. 10's permutation TCP matrix) with single
//! shortest-path forwarding and with downhill-alternate multipath
//! (stretch 1.2), then compare hotspot utilization and total goodput.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("ext_multipath_te");
}
