//! Fig. 13 — shortest-path snapshots over time: Paris → Luanda on
//! Starlink S1.
//!
//! Finds the instants of maximum and minimum RTT across the horizon and
//! exports both path geometries (the paper's 117 ms vs 85 ms snapshots,
//! where the long path needs 9 zig-zag hops to exit the orbit vs 6).
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig13_path_viz");
}
