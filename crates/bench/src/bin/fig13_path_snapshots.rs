//! Fig. 13 — shortest-path snapshots over time: Paris → Luanda on
//! Starlink S1.
//!
//! Finds the instants of maximum and minimum RTT across the horizon and
//! exports both path geometries (the paper's 117 ms vs 85 ms snapshots,
//! where the long path needs 9 zig-zag hops to exit the orbit vs 6).

use hypatia::scenario::ConstellationChoice;
use hypatia_bench::{banner, BenchArgs};
use hypatia_constellation::ground::top_cities;
use hypatia_routing::forwarding::compute_forwarding_state;
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};
use hypatia_viz::path_viz::PathSnapshot;

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 13", "Shortest-path changes over time: Paris -> Luanda (Starlink S1)", &args);

    let (duration, step) = if args.full {
        (SimDuration::from_secs(200), SimDuration::from_millis(100))
    } else {
        (SimDuration::from_secs(120), SimDuration::from_secs(1))
    };

    let c = ConstellationChoice::StarlinkS1.build(top_cities(100));
    let src = c.gs_node(c.find_gs("Paris").expect("Paris"));
    let dst = c.gs_node(c.find_gs("Luanda").expect("Luanda"));

    let mut best: Option<(SimTime, f64)> = None;
    let mut worst: Option<(SimTime, f64)> = None;
    for t in TimeSteps::new(SimTime::ZERO, SimTime::ZERO + duration, step) {
        let state = compute_forwarding_state(&c, t, &[dst]);
        if let Some(d) = state.distance(src, dst) {
            let ms = 2.0 * d.secs_f64() * 1e3;
            if best.is_none() || ms < best.unwrap().1 {
                best = Some((t, ms));
            }
            if worst.is_none() || ms > worst.unwrap().1 {
                worst = Some((t, ms));
            }
        }
    }

    for (label, inst) in [("max_rtt", worst), ("min_rtt", best)] {
        let (t, ms) = inst.expect("Paris–Luanda should be connected");
        let state = compute_forwarding_state(&c, t, &[dst]);
        let path = state.path(src, dst).expect("connected at extreme instant");
        let snap = PathSnapshot::capture(&c, &path, t);
        println!(
            "{label}: t={:.1}s RTT {:.1} ms, {} hops, {:.0} km",
            t.secs_f64(),
            ms,
            snap.hops(),
            snap.length_km()
        );
        println!("  {}", snap.describe());
        args.write_text(
            &format!("fig13_paris_luanda_{label}.json"),
            &serde_json::to_string_pretty(&snap.to_json()).expect("json"),
        );
    }

    let (wt, wms) = worst.unwrap();
    let (bt, bms) = best.unwrap();
    println!();
    println!(
        "RTT range {bms:.1}–{wms:.1} ms (paper: 85–117 ms) at t={:.0}s/{:.0}s",
        bt.secs_f64(),
        wt.secs_f64()
    );
    println!("Check: north-south paths ride one orbit as long as possible; the");
    println!("slow snapshot needs more zig-zag hops to exit towards the destination.");
}
