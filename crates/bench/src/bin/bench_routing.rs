//! Snapshot-routing throughput probe for `scripts/bench_routing.sh`.
//!
//! Replays a forwarding-state sweep — the fig09-style granularity loop —
//! once per routing mode and reports wall-clock snapshots/sec plus the
//! incremental router's repair/fallback counters, one JSON object per
//! line so the wrapper script can collect them into `BENCH_routing.json`.
//!
//! ```text
//! bench_routing [--constellation SLUG] [--cities N] [--duration-s S]
//!               [--step-ms MS] [--fail-frac F] [--mttr-s S] [--seed N]
//!               [--churn-threshold F] [--mode full|incremental|both]
//! ```
//!
//! `--fail-frac 0` (the default) measures pure weight drift (satellite
//! motion only); a positive fraction compiles a seeded satellite-flap
//! schedule at that steady-state unavailability, so snapshots also carry
//! edge insert/delete churn. Timing uses `std::time::Instant` around the
//! whole sweep — no harness overhead, the same convention as
//! `bench_netsim`.

use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_constellation::{Constellation, NodeId};
use hypatia_fault::{FaultSchedule, FaultSpec, FaultState, FlapProcess};
use hypatia_routing::forwarding::ForwardingState;
use hypatia_routing::graph::SnapshotBuffers;
use hypatia_routing::incremental::{IncrementalRouter, RouterStats, RoutingConfig, RoutingMode};
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};
use std::time::Instant;

struct Args {
    constellation: ConstellationChoice,
    cities: usize,
    duration_s: f64,
    step_ms: f64,
    fail_frac: f64,
    mttr_s: f64,
    seed: u64,
    churn_threshold: f64,
    modes: Vec<RoutingMode>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        constellation: ConstellationChoice::KuiperK1,
        cities: 15,
        duration_s: 10.0,
        step_ms: 100.0,
        fail_frac: 0.0,
        mttr_s: 10.0,
        seed: 2020,
        churn_threshold: RoutingConfig::default().repair_churn_threshold,
        modes: vec![RoutingMode::Full, RoutingMode::Incremental],
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--constellation" => {
                let v = value("--constellation");
                parsed.constellation = ConstellationChoice::parse(&v)
                    .unwrap_or_else(|| panic!("unknown constellation {v:?}"));
            }
            "--cities" => parsed.cities = value("--cities").parse().expect("--cities: integer"),
            "--duration-s" => {
                parsed.duration_s = value("--duration-s").parse().expect("--duration-s: seconds")
            }
            "--step-ms" => parsed.step_ms = value("--step-ms").parse().expect("--step-ms: ms"),
            "--fail-frac" => {
                parsed.fail_frac = value("--fail-frac").parse().expect("--fail-frac: fraction")
            }
            "--mttr-s" => parsed.mttr_s = value("--mttr-s").parse().expect("--mttr-s: seconds"),
            "--seed" => parsed.seed = value("--seed").parse().expect("--seed: integer"),
            "--churn-threshold" => {
                parsed.churn_threshold =
                    value("--churn-threshold").parse().expect("--churn-threshold: fraction")
            }
            "--mode" => {
                parsed.modes = match value("--mode").as_str() {
                    "full" => vec![RoutingMode::Full],
                    "incremental" => vec![RoutingMode::Incremental],
                    "both" => vec![RoutingMode::Full, RoutingMode::Incremental],
                    other => panic!("unknown mode {other:?} (full|incremental|both)"),
                };
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

/// One timed sweep: the serial snapshot loop every worker of the parallel
/// pipeline runs, including the per-step fault mask when a schedule is
/// present.
fn run_sweep(
    c: &Constellation,
    dests: &[NodeId],
    times: &[SimTime],
    schedule: Option<&FaultSchedule>,
    config: RoutingConfig,
) -> (f64, RouterStats) {
    let mut buffers = SnapshotBuffers::new();
    let mut router = IncrementalRouter::new(config);
    let mut state = ForwardingState::empty();
    let t0 = Instant::now();
    for &t in times {
        let mask = schedule.map(|s| FaultState::at(s, t));
        let graph = buffers.snapshot_masked(c, t, mask.as_ref());
        router.compute_into(graph, t, dests, &mut state);
        std::hint::black_box(&state);
    }
    (t0.elapsed().as_secs_f64(), router.stats)
}

fn main() {
    let args = parse_args();
    let scenario = ScenarioBuilder::new(args.constellation).top_cities(args.cities).build();
    let c = &*scenario.constellation;
    let dests: Vec<NodeId> = (0..c.num_ground_stations()).map(|i| c.gs_node(i)).collect();

    let duration = SimDuration::from_secs_f64(args.duration_s);
    let step = SimDuration::from_secs_f64(args.step_ms / 1e3);
    let times: Vec<SimTime> =
        TimeSteps::new(SimTime::ZERO, SimTime::ZERO + duration, step).collect();

    let schedule = if args.fail_frac > 0.0 {
        let spec = FaultSpec {
            seed: args.seed,
            sat_flap: Some(FlapProcess::from_unavailability(args.fail_frac, args.mttr_s)),
            ..FaultSpec::default()
        };
        Some(FaultSchedule::compile(&spec, c, duration))
    } else {
        None
    };

    for &mode in &args.modes {
        let config = RoutingConfig { mode, repair_churn_threshold: args.churn_threshold };
        let (wall_s, stats) = run_sweep(c, &dests, &times, schedule.as_ref(), config);
        let snapshots = times.len();
        let per_sec = if wall_s > 0.0 { snapshots as f64 / wall_s } else { 0.0 };
        // Hand-rolled JSON: every field is a number or a known-safe token.
        println!(
            "{{\"mode\":\"{}\",\"constellation\":\"{}\",\"cities\":{},\"duration_s\":{},\
             \"step_ms\":{},\"fail_frac\":{},\"mttr_s\":{},\"seed\":{},\
             \"churn_threshold\":{},\"snapshots\":{},\"wall_s\":{:.6},\
             \"snapshots_per_sec\":{:.3},\"stats\":{{\"repaired\":{},\"full_mode\":{},\
             \"fallback_first\":{},\"fallback_churn\":{},\"fallback_zero_delay\":{}}}}}",
            mode.as_str(),
            args.constellation.slug(),
            args.cities,
            args.duration_s,
            args.step_ms,
            args.fail_frac,
            args.mttr_s,
            args.seed,
            args.churn_threshold,
            snapshots,
            wall_s,
            per_sec,
            stats.repaired,
            stats.full_mode,
            stats.fallback_first,
            stats.fallback_churn,
            stats.fallback_zero_delay,
        );
    }
}
