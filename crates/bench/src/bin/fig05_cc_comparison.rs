//! Fig. 5 — loss- vs delay-based congestion control on a changing path.
//!
//! NewReno and Vegas run *separately* (no competition) on the same pair.
//! Expected shapes: NewReno fills the queue (RTT rides at computed + Q);
//! Vegas tracks the computed RTT with a near-empty queue until the path
//! lengthens, then misreads the latency jump as congestion and its
//! throughput collapses for the rest of the run.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig05_rates_rtt");
}
