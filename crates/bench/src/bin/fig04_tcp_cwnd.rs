//! Fig. 4 — TCP congestion-window evolution with the BDP+Q overlay.
//!
//! NewReno on the paper's three pairs, 10 Mbit/s links, 100-packet queues.
//! The window should oscillate between BDP and BDP+Q; reordering after
//! path shortenings cuts it without loss.

use hypatia::experiments::tcp_single::{run, CcKind};
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_bench::{banner, BenchArgs};
use hypatia_util::SimDuration;

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 4", "TCP (NewReno) cwnd evolution vs BDP+Q (Kuiper K1)", &args);

    let duration = if args.full {
        SimDuration::from_secs(200)
    } else {
        SimDuration::from_secs(40)
    };

    let scenario =
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(100).build();

    let pairs = [
        ("Rio de Janeiro", "Saint Petersburg", "rio_stpetersburg"),
        ("Manila", "Dalian", "manila_dalian"),
        ("Istanbul", "Nairobi", "istanbul_nairobi"),
    ];

    println!(
        "{:<36} {:>9} {:>10} {:>9} {:>9} {:>12}",
        "pair", "goodput", "fast rtx", "RTOs", "reorder", "cwnd range"
    );
    for (src, dst, slug) in pairs {
        let r = run(&scenario, src, dst, CcKind::NewReno, duration);
        let max_cwnd = r.cwnd_series.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        let min_cwnd =
            r.cwnd_series.iter().map(|&(_, w)| w).fold(f64::INFINITY, f64::min);
        println!(
            "{:<36} {:>7.2}Mb {:>10} {:>9} {:>9} {:>5.0}-{:.0}pk",
            format!("{src} -> {dst}"),
            r.goodput_mbps(duration),
            r.fast_retransmits,
            r.timeouts,
            r.reordered_arrivals,
            min_cwnd,
            max_cwnd
        );
        args.write_series(&format!("fig04_{slug}_cwnd.dat"), "t_s cwnd_pkts", &r.cwnd_series);
        args.write_series(
            &format!("fig04_{slug}_bdpq.dat"),
            "t_s bdp_plus_q_pkts",
            &r.bdp_plus_q_series,
        );
    }
    println!();
    println!("Check: cwnd peaks should track the BDP+Q overlay; cuts without");
    println!("RTOs when the path shortens are reordering-induced (paper §4.2).");
}
