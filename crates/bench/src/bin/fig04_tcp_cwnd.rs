//! Fig. 4 — TCP congestion-window evolution with the BDP+Q overlay.
//!
//! NewReno on the paper's three pairs, 10 Mbit/s links, 100-packet queues.
//! The window should oscillate between BDP and BDP+Q; reordering after
//! path shortenings cuts it without loss.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig04_cwnd_bdp");
}
