//! Packet-simulator throughput probe for `scripts/bench_sim.sh`.
//!
//! Runs the Fig. 2 permutation workload (UDP and TCP) at one scale and
//! prints one JSON object per run to stdout — machine-readable, one line
//! each, so the wrapper script can collect them into `BENCH_netsim.json`.
//!
//! ```text
//! bench_netsim [--queue heap|calendar] [--cities N] [--rate-mbps R]
//!              [--duration-s S] [--seed N] [--workload udp|tcp|both]
//!              [--shards N] [--flow-table apps|arena]
//!              [--checkpoint-every-s F]
//! ```
//!
//! Unlike the Criterion benches this reports *simulator events per
//! wall-clock second*, the paper's own cost metric (§3.2: the simulation
//! is bottlenecked at per-packet event processing). With
//! `--checkpoint-every-s` the run snapshots at that interval and the
//! JSON's `checkpoint_count` / `checkpoint_wall_s` fields report the
//! write overhead (both zero when checkpointing is off).

use hypatia::experiments::scalability::{run_point_with, FlowTable, Workload};
use hypatia::resilience::DriveOptions;
use hypatia::runner::Watchdog;
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_netsim::QueueKind;
use hypatia_util::{DataRate, SimDuration};

struct Args {
    queue: QueueKind,
    cities: usize,
    rate_mbps: f64,
    duration_s: f64,
    seed: u64,
    workloads: Vec<Workload>,
    shards: usize,
    flow_table: FlowTable,
    checkpoint_every_s: Option<f64>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        queue: QueueKind::default(),
        cities: 10,
        rate_mbps: 10.0,
        duration_s: 2.0,
        seed: 2020,
        workloads: vec![Workload::Udp, Workload::Tcp],
        shards: 1,
        flow_table: FlowTable::Apps,
        checkpoint_every_s: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--queue" => {
                let v = value("--queue");
                parsed.queue = QueueKind::parse(&v)
                    .unwrap_or_else(|| panic!("unknown queue kind {v:?} (heap|calendar)"));
            }
            "--cities" => parsed.cities = value("--cities").parse().expect("--cities: integer"),
            "--rate-mbps" => {
                parsed.rate_mbps = value("--rate-mbps").parse().expect("--rate-mbps: number")
            }
            "--duration-s" => {
                parsed.duration_s = value("--duration-s").parse().expect("--duration-s: seconds")
            }
            "--seed" => parsed.seed = value("--seed").parse().expect("--seed: integer"),
            "--shards" => {
                parsed.shards = value("--shards").parse().expect("--shards: positive integer");
                assert!(parsed.shards >= 1, "--shards: positive integer");
            }
            "--flow-table" => {
                let v = value("--flow-table");
                parsed.flow_table = FlowTable::parse(&v)
                    .unwrap_or_else(|| panic!("unknown flow table {v:?} (apps|arena)"));
            }
            "--checkpoint-every-s" => {
                let s: f64 =
                    value("--checkpoint-every-s").parse().expect("--checkpoint-every-s: seconds");
                assert!(s > 0.0, "--checkpoint-every-s: positive seconds");
                parsed.checkpoint_every_s = Some(s);
            }
            "--workload" => {
                parsed.workloads = match value("--workload").as_str() {
                    "udp" => vec![Workload::Udp],
                    "tcp" => vec![Workload::Tcp],
                    "both" => vec![Workload::Udp, Workload::Tcp],
                    other => panic!("unknown workload {other:?} (udp|tcp|both)"),
                };
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut scenario =
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(args.cities).build();
    scenario.sim_config.queue = args.queue;
    scenario.sim_config.sim_shards = args.shards;

    let rate = DataRate::from_bps((args.rate_mbps * 1e6).round() as u64);
    let duration = SimDuration::from_secs_f64(args.duration_s);
    let snap_dir = std::env::temp_dir().join(format!("bench_netsim_{}", std::process::id()));
    let opts = match args.checkpoint_every_s {
        Some(s) => DriveOptions {
            checkpoint_every: Some(SimDuration::from_secs_f64(s)),
            checkpoint_dir: Some(snap_dir.clone()),
            ..DriveOptions::off()
        },
        None => DriveOptions::off(),
    };
    for workload in &args.workloads {
        let (p, outcome) = run_point_with(
            &scenario,
            *workload,
            args.flow_table,
            rate,
            duration,
            args.seed,
            &opts,
            &Watchdog::unlimited(),
        )
        .unwrap_or_else(|e| panic!("bench point failed: {e}"));
        let events_per_sec =
            if p.wall_s > 0.0 { (p.events as f64 / p.wall_s).round() as u64 } else { 0 };
        // Hand-rolled JSON: every field is a number or a known-safe token.
        println!(
            "{{\"workload\":\"{}\",\"queue\":\"{}\",\"cities\":{},\"rate_mbps\":{},\
             \"duration_s\":{},\"seed\":{},\"sim_shards\":{},\"epochs\":{},\
             \"events\":{},\"wall_s\":{:.6},\
             \"events_per_sec\":{},\"goodput_gbps\":{:.6},\
             \"checkpoint_count\":{},\"checkpoint_wall_s\":{:.6}}}",
            workload.name().to_lowercase(),
            args.queue.name(),
            args.cities,
            args.rate_mbps,
            args.duration_s,
            args.seed,
            p.engine.sim_shards,
            p.engine.epochs,
            p.events,
            p.wall_s,
            events_per_sec,
            p.goodput_gbps,
            outcome.checkpoints,
            outcome.checkpoint_wall_s,
        );
    }
    let _ = std::fs::remove_dir_all(&snap_dir);
}
