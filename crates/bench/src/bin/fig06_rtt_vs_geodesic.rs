//! Fig. 6 — ECDF of max-RTT / geodesic-RTT per pair, three constellations.
//!
//! Expected shape (paper §5.1): >80% of pairs below 2× the geodesic for
//! every constellation; Telesat lowest despite the fewest satellites
//! (its 10° minimum elevation admits many more GSL options); Starlink
//! above Kuiper (22 vs 34 satellites per orbit forces zig-zag paths).

use hypatia::analysis::{fraction_where, percentile};
use hypatia_bench::{banner, three_constellation_sweep, BenchArgs};
use hypatia_viz::csv::ecdf;

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 6", "Max RTT over time vs geodesic RTT (ECDF across pairs)", &args);

    let sweeps = three_constellation_sweep(&args);

    println!(
        "{:<14} {:>7} {:>12} {:>12} {:>16}",
        "constellation", "pairs", "median (x)", "p90 (x)", "frac below 2x"
    );
    for (name, stats) in &sweeps {
        let stretches: Vec<f64> =
            stats.iter().map(|s| s.rtt_stretch()).filter(|v| v.is_finite()).collect();
        let slug = name.to_lowercase().replace(' ', "_");
        args.write_series(
            &format!("fig06_stretch_ecdf_{slug}.dat"),
            "max_rtt_over_geodesic ecdf",
            &ecdf(&stretches),
        );
        println!(
            "{:<14} {:>7} {:>12.2} {:>12.2} {:>16.2}",
            name,
            stretches.len(),
            percentile(&stretches, 50.0).unwrap_or(f64::NAN),
            percentile(&stretches, 90.0).unwrap_or(f64::NAN),
            fraction_where(&stretches, |v| v < 2.0)
        );
    }

    println!();
    println!("Paper's qualitative checks:");
    println!("  * every constellation: >80% of pairs below 2x geodesic;");
    println!("  * ordering of medians: Telesat < Kuiper < Starlink.");
    let medians: Vec<f64> = sweeps
        .iter()
        .map(|(_, stats)| {
            let v: Vec<f64> =
                stats.iter().map(|s| s.rtt_stretch()).filter(|x| x.is_finite()).collect();
            percentile(&v, 50.0).unwrap_or(f64::NAN)
        })
        .collect();
    let ordering_holds = medians[0] <= medians[1] && medians[1] <= medians[2];
    println!(
        "  measured medians: Telesat {:.2}, Kuiper {:.2}, Starlink {:.2} -> ordering {}",
        medians[0],
        medians[1],
        medians[2],
        if ordering_holds { "HOLDS" } else { "DIFFERS (check scale/params)" }
    );
}
