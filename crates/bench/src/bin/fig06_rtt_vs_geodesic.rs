//! Fig. 6 — ECDF of max-RTT / geodesic-RTT per pair, three constellations.
//!
//! Expected shape (paper §5.1): >80% of pairs below 2× the geodesic for
//! every constellation; Telesat lowest despite the fewest satellites
//! (its 10° minimum elevation admits many more GSL options); Starlink
//! above Kuiper (22 vs 34 satellites per orbit forces zig-zag paths).
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig06_rtt_stretch_ecdf");
}
