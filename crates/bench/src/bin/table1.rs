//! Table 1 — shell configurations for Starlink phase 1, Kuiper, Telesat.
//!
//! Regenerates the paper's table from the encoded FCC/ITU filing values
//! and verifies the per-constellation satellite totals.

use hypatia::constellation::presets;

fn main() {
    println!("Table 1: Shell configurations (from FCC/ITU filings)");
    println!();
    println!("{:<10} {:<6} {:>8} {:>8} {:>12} {:>8}", "Const.", "shell", "h (km)", "orbits", "sats/orbit", "incl.");
    let groups = [
        ("Starlink", presets::starlink_shells()),
        ("Kuiper", presets::kuiper_shells()),
        ("Telesat", presets::telesat_shells()),
    ];
    for (name, shells) in &groups {
        let mut total = 0;
        for s in shells {
            println!(
                "{:<10} {:<6} {:>8} {:>8} {:>12} {:>7}°",
                name, s.name, s.altitude_km, s.num_orbits, s.sats_per_orbit, s.inclination_deg
            );
            total += s.num_satellites();
        }
        println!("{:<10} total satellites: {total}", name);
        println!();
    }
    println!("Minimum elevation angles: Starlink {}°, Kuiper {}°, Telesat {}°",
        presets::STARLINK_MIN_ELEVATION_DEG,
        presets::KUIPER_MIN_ELEVATION_DEG,
        presets::TELESAT_MIN_ELEVATION_DEG);
}
