//! Table 1 — shell configurations for Starlink phase 1, Kuiper, Telesat.
//!
//! Regenerates the paper's table from the encoded FCC/ITU filing values
//! and verifies the per-constellation satellite totals.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("table1_constellations");
}
