//! Fig. 7 — per-pair RTT variation ECDFs: (a) max RTT, (b) max−min,
//! (c) max/min, across the three constellations.
//!
//! Expected shape: Starlink S1 sees the largest variations (~10 ms median
//! delta; >30% of pairs with max ≥ 1.2× min); Telesat the smallest.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig07_rtt_cdfs");
}
