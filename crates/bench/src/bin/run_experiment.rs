//! Generic entry point: run any registered experiment from its spec.
//!
//! ```text
//! run_experiment <name> [--full] [--out <dir>] [--set key=value]...
//! run_experiment --spec <file.json> [--out <dir>] [--set key=value]...
//! run_experiment <name> --resume <checkpoint-dir> [--set ...]
//! run_experiment --list
//! run_experiment <name> [--full] [--set ...] --print-spec
//! ```
//!
//! `--list` prints every registered experiment. `--print-spec` prints the
//! resolved spec as JSON (after `--full` and `--set`) without running it —
//! the output is loadable again via `--spec`. `--resume <dir>` restores
//! per-simulation snapshots a previous `--set checkpoint_every_s=F` run
//! left behind (shorthand for `--set resume_from=<dir>`).
//!
//! Runs execute under supervision: panics, wall-clock deadlines
//! (`--set deadline_s=F`), and memory budgets (`--set max_rss_mb=F`)
//! become typed errors with a salvaged `status: aborted` manifest, and
//! each error class exits with its own code (see
//! `RunError::exit_code`): 2 usage, 3 unknown experiment, 4 unknown
//! city, 5 bad spec, 6 I/O, 7 panic, 8 deadline, 9 memory budget,
//! 10 checkpoint.

use hypatia::runner::{ExperimentRunner, RunError, RunPolicy};
use hypatia::spec::ExperimentSpec;
use hypatia_bench::apply_sets;
use std::path::PathBuf;
use std::process::exit;

struct Cli {
    name: Option<String>,
    spec_file: Option<PathBuf>,
    full: bool,
    out_dir: PathBuf,
    resume: Option<String>,
    sets: Vec<(String, String)>,
    list: bool,
    print_spec: bool,
}

const USAGE: &str = "usage: run_experiment <name> [--full] [--out <dir>] [--set key=value]...
       run_experiment --spec <file.json> [--out <dir>] [--set key=value]...
       run_experiment <name> --resume <checkpoint-dir>
       run_experiment --list
       run_experiment <name> --print-spec";

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        name: None,
        spec_file: None,
        full: false,
        out_dir: PathBuf::from("results"),
        resume: None,
        sets: Vec::new(),
        list: false,
        print_spec: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => cli.full = true,
            "--list" => cli.list = true,
            "--print-spec" => cli.print_spec = true,
            "--out" => {
                cli.out_dir =
                    PathBuf::from(args.next().ok_or("--out requires a directory argument")?);
            }
            "--spec" => {
                cli.spec_file =
                    Some(PathBuf::from(args.next().ok_or("--spec requires a file argument")?));
            }
            "--resume" => {
                cli.resume = Some(args.next().ok_or("--resume requires a directory argument")?);
            }
            "--set" => {
                let kv = args.next().ok_or("--set requires key=value")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects key=value, got {kv:?}"))?;
                cli.sets.push((k.to_string(), v.to_string()));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other if !other.starts_with('-') && cli.name.is_none() => {
                cli.name = Some(other.to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(cli)
}

/// Resolve the spec, keeping errors typed so each class exits with its
/// own code (unknown experiment 3, bad spec/`--set` 5, unreadable spec
/// file 6) instead of collapsing everything to the usage code.
fn resolve_spec(cli: &Cli, runner: &ExperimentRunner) -> Result<ExperimentSpec, RunError> {
    let mut spec = match (&cli.spec_file, &cli.name) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(path).map_err(|e| {
                RunError::Io(std::io::Error::new(
                    e.kind(),
                    format!("cannot read {}: {e}", path.display()),
                ))
            })?;
            ExperimentSpec::from_json(&text).map_err(|e| RunError::BadSpec(e.to_string()))?
        }
        (None, Some(name)) => runner.spec(name, cli.full)?,
        (None, None) => {
            eprintln!("error: missing experiment name\n{USAGE}");
            exit(2);
        }
    };
    apply_sets(&mut spec, &cli.sets)?;
    if let Some(dir) = &cli.resume {
        spec.resume_from = Some(dir.clone());
    }
    Ok(spec)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            exit(2);
        }
    };

    let runner = ExperimentRunner::new();
    if cli.list {
        println!("registered experiments:");
        for name in runner.names() {
            let title = runner.get(&name).map(|e| e.title()).unwrap_or("");
            println!("  {name:<28} {title}");
        }
        return;
    }

    let spec = match resolve_spec(&cli, &runner) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}");
            exit(e.exit_code());
        }
    };
    if cli.print_spec {
        println!("{}", spec.to_json_string());
        return;
    }

    let policy = RunPolicy::from_spec(&spec);
    match runner.run_supervised(spec, cli.out_dir, &policy) {
        Ok(manifest) => println!("done: {}", manifest.display()),
        Err(e) => {
            // One diagnostic line per failure, one exit code per class
            // (RunError::Display already lists the registry for unknown
            // experiment names).
            eprintln!("error: {e}");
            exit(e.exit_code());
        }
    }
}
