//! Generic entry point: run any registered experiment from its spec.
//!
//! ```text
//! run_experiment <name> [--full] [--out <dir>] [--set key=value]...
//! run_experiment --spec <file.json> [--out <dir>] [--set key=value]...
//! run_experiment --list
//! run_experiment <name> [--full] [--set ...] --print-spec
//! ```
//!
//! `--list` prints every registered experiment. `--print-spec` prints the
//! resolved spec as JSON (after `--full` and `--set`) without running it —
//! the output is loadable again via `--spec`.

use hypatia::runner::{ExperimentRunner, RunError};
use hypatia::spec::ExperimentSpec;
use hypatia_bench::apply_sets;
use std::path::PathBuf;
use std::process::exit;

struct Cli {
    name: Option<String>,
    spec_file: Option<PathBuf>,
    full: bool,
    out_dir: PathBuf,
    sets: Vec<(String, String)>,
    list: bool,
    print_spec: bool,
}

const USAGE: &str = "usage: run_experiment <name> [--full] [--out <dir>] [--set key=value]...
       run_experiment --spec <file.json> [--out <dir>] [--set key=value]...
       run_experiment --list
       run_experiment <name> --print-spec";

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        name: None,
        spec_file: None,
        full: false,
        out_dir: PathBuf::from("results"),
        sets: Vec::new(),
        list: false,
        print_spec: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--full" => cli.full = true,
            "--list" => cli.list = true,
            "--print-spec" => cli.print_spec = true,
            "--out" => {
                cli.out_dir =
                    PathBuf::from(args.next().ok_or("--out requires a directory argument")?);
            }
            "--spec" => {
                cli.spec_file =
                    Some(PathBuf::from(args.next().ok_or("--spec requires a file argument")?));
            }
            "--set" => {
                let kv = args.next().ok_or("--set requires key=value")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects key=value, got {kv:?}"))?;
                cli.sets.push((k.to_string(), v.to_string()));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other if !other.starts_with('-') && cli.name.is_none() => {
                cli.name = Some(other.to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(cli)
}

fn resolve_spec(cli: &Cli, runner: &ExperimentRunner) -> Result<ExperimentSpec, String> {
    let mut spec = match (&cli.spec_file, &cli.name) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            ExperimentSpec::from_json(&text).map_err(|e| e.to_string())?
        }
        (None, Some(name)) => runner.spec(name, cli.full).map_err(|e| e.to_string())?,
        (None, None) => return Err(format!("missing experiment name\n{USAGE}")),
    };
    apply_sets(&mut spec, &cli.sets).map_err(|e| e.to_string())?;
    Ok(spec)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            exit(2);
        }
    };

    let runner = ExperimentRunner::new();
    if cli.list {
        println!("registered experiments:");
        for name in runner.names() {
            let title = runner.get(&name).map(|e| e.title()).unwrap_or("");
            println!("  {name:<28} {title}");
        }
        return;
    }

    let spec = match resolve_spec(&cli, &runner) {
        Ok(spec) => spec,
        Err(msg) => {
            eprintln!("error: {msg}");
            exit(2);
        }
    };
    if cli.print_spec {
        println!("{}", spec.to_json_string());
        return;
    }

    match runner.run(spec, cli.out_dir) {
        Ok(manifest) => println!("done: {}", manifest.display()),
        Err(RunError::UnknownExperiment { name, available }) => {
            eprintln!("error: unknown experiment {name:?}");
            eprintln!("available: {}", available.join(", "));
            exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(2);
        }
    }
}
