//! Extension study — BBR on LEO paths (paper §4.2: "once a mature
//! implementation of BBR is available, evaluating its behavior on LEO
//! networks would be of high interest").
//!
//! Repeats the Fig. 5 setting (a path whose baseline RTT shifts) with all
//! four controllers. The hypothesis, which the run quantifies: BBR's
//! windowed RTprop expires and re-learns a lengthened path, so its
//! late-run throughput stays high where Vegas's collapses.

use hypatia::experiments::tcp_single::{run, CcKind};
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_bench::{banner, BenchArgs};
use hypatia_util::SimDuration;

fn main() {
    let args = BenchArgs::parse();
    banner("Extension", "BBR vs NewReno/Vegas/CUBIC over LEO dynamics", &args);

    let duration = if args.full {
        SimDuration::from_secs(200)
    } else {
        SimDuration::from_secs(60)
    };
    let scenario =
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(100).build();
    let (src, dst) = ("Rio de Janeiro", "Saint Petersburg");
    println!("flow: {src} -> {dst}, {:.0} s\n", duration.secs_f64());

    println!(
        "{:<9} {:>10} {:>16} {:>9} {:>9}",
        "CC", "goodput", "2nd-half tput", "fast rtx", "RTOs"
    );
    let half = duration.secs_f64() / 2.0;
    let mut late = Vec::new();
    for cc in [CcKind::NewReno, CcKind::Vegas, CcKind::Cubic, CcKind::Bbr] {
        let r = run(&scenario, src, dst, cc, duration);
        let late_pts: Vec<f64> = r
            .throughput_series
            .iter()
            .filter(|&&(t, _)| t >= half)
            .map(|&(_, m)| m)
            .collect();
        let late_mean = late_pts.iter().sum::<f64>() / late_pts.len().max(1) as f64;
        println!(
            "{:<9} {:>7.2}Mb {:>13.2}Mb {:>9} {:>9}",
            cc.name(),
            r.goodput_mbps(duration),
            late_mean,
            r.fast_retransmits,
            r.timeouts
        );
        let slug = cc.name().to_lowercase();
        args.write_series(
            &format!("ext_bbr_study_{slug}_throughput.dat"),
            "t_s mbps",
            &r.throughput_series,
        );
        late.push((cc, late_mean));
    }

    let vegas = late.iter().find(|(c, _)| *c == CcKind::Vegas).unwrap().1;
    let bbr = late.iter().find(|(c, _)| *c == CcKind::Bbr).unwrap().1;
    println!();
    println!(
        "late-run throughput — BBR {bbr:.2} vs Vegas {vegas:.2} Mbps: BBR sustains {}",
        if bbr > vegas { "HOLDS" } else { "DIFFERS (check scale/params)" }
    );
    println!("Mechanism: BBR's RTprop is a 10 s windowed minimum, so a path-RTT");
    println!("increase ages out; Vegas's baseRTT is a lifetime minimum and the");
    println!("inflated RTT reads as permanent congestion (paper Fig. 5).");
}
