//! Extension study — BBR on LEO paths (paper §4.2: "once a mature
//! implementation of BBR is available, evaluating its behavior on LEO
//! networks would be of high interest").
//!
//! Repeats the Fig. 5 setting (a path whose baseline RTT shifts) with all
//! four controllers. The hypothesis, which the run quantifies: BBR's
//! windowed RTprop expires and re-learns a lengthened path, so its
//! late-run throughput stays high where Vegas's collapses.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("ext_bbr_study");
}
