//! Extension study — resilience under component failures.
//!
//! Sweeps a seeded satellite-flap process (`hypatia-fault`) across
//! steady-state failure rates and reports goodput, RTT inflation, loss,
//! reroute latency and ground-segment reachability against the
//! fault-free baseline, plus a CZML outage layer.
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("ext_failure_resilience");
}
