//! Fig. 10 — unused bandwidth under cross-traffic, dynamic vs frozen.
//!
//! A fixed permutation of long-running TCP flows; the Rio de Janeiro →
//! St. Petersburg pair is observed. Expected shape: in the *moving*
//! network, path changes shift the cross-traffic mix and leave substantial
//! capacity unused (paper: >1/3 of capacity unused for 31% of the time,
//! vs 11% if frozen at t = 0).

use hypatia::experiments::cross_traffic::{run, CrossTrafficConfig};
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_bench::{banner, BenchArgs};
use hypatia_netsim::SimConfig;
use hypatia_util::{DataRate, SimDuration};

fn main() {
    let args = BenchArgs::parse();
    banner("Fig. 10", "Unused bandwidth with cross-traffic (Kuiper K1)", &args);

    let (cities, duration, pair) = if args.full {
        (100, SimDuration::from_secs(200), ("Rio de Janeiro", "Saint Petersburg"))
    } else {
        // Reduced: fewer flows and a shorter horizon. Rio–Moscow is a
        // long, churning route that stays connected (unlike St.Petersburg)
        // so the series has no gaps.
        (30, SimDuration::from_secs(100), ("Rio de Janeiro", "Moscow"))
    };

    let scenario = ScenarioBuilder::new(ConstellationChoice::KuiperK1)
        .top_cities(cities)
        .sim_config(
            SimConfig::default()
                .with_link_rate(DataRate::from_mbps(10))
                .with_utilization_bucket(SimDuration::from_secs(1)),
        )
        .build();

    println!("observed pair: {} -> {}", pair.0, pair.1);
    let mut rows = Vec::new();
    for frozen in [false, true] {
        let label = if frozen { "frozen(t=0)" } else { "dynamic" };
        eprintln!("  running {label} network...");
        let r = run(&scenario, pair.0, pair.1, &CrossTrafficConfig { duration, seed: 1, frozen, multipath_stretch: None });
        let frac = r.fraction_time_unused_above(1.0 / 3.0);
        println!(
            "{label:<12}: flows={:<4} total goodput {:>7.1} Mbps, \
             time with >1/3 capacity unused: {:>5.1}%",
            r.flows,
            r.total_goodput_mbps,
            frac * 100.0
        );
        args.write_series(
            &format!("fig10_unused_{}.dat", if frozen { "frozen" } else { "dynamic" }),
            "t_s unused_mbps",
            &r.unused_bandwidth_series,
        );
        rows.push((label, frac));
    }

    println!();
    println!(
        "Paper's qualitative check: dynamic ({:.1}%) > frozen ({:.1}%) — {}",
        rows[0].1 * 100.0,
        rows[1].1 * 100.0,
        if rows[0].1 >= rows[1].1 { "HOLDS" } else { "DIFFERS (check scale/params)" }
    );
}
