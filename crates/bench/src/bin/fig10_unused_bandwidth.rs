//! Fig. 10 — unused bandwidth under cross-traffic, dynamic vs frozen.
//!
//! A fixed permutation of long-running TCP flows; the Rio de Janeiro →
//! St. Petersburg pair is observed. Expected shape: in the *moving*
//! network, path changes shift the cross-traffic mix and leave substantial
//! capacity unused (paper: >1/3 of capacity unused for 31% of the time,
//! vs 11% if frozen at t = 0).
//!
//! Thin shim: the implementation lives in the shared experiment registry
//! (`hypatia::figures`) and runs through `hypatia::runner`.

fn main() {
    hypatia_bench::run_figure("fig10_unused_bandwidth");
}
