//! Flow-count scaling probe for `scripts/bench_flows.sh`.
//!
//! Runs ONE point of the `ext_flow_scaling` gravity workload — a single
//! offered flow count — and prints one JSON object to stdout. One point
//! per process is deliberate: peak RSS (`VmHWM`) is a process-lifetime
//! high-water mark, so sweeping in one process would report the largest
//! point for every entry. The wrapper script loops the flow counts and
//! collects the lines into `BENCH_flows.json`.
//!
//! ```text
//! bench_flows [--flows N] [--cities N] [--flow-rate-kbps R]
//!             [--duration-s S] [--seed N] [--shards N]
//!             [--flow-table apps|arena]
//! ```

use hypatia::experiments::flow_scaling::run_flow_point;
use hypatia::experiments::scalability::FlowTable;
use hypatia::scenario::{ConstellationChoice, ScenarioBuilder};
use hypatia_util::{DataRate, SimDuration};

struct Args {
    flows: u64,
    cities: usize,
    flow_rate_kbps: f64,
    duration_s: f64,
    seed: u64,
    shards: usize,
    flow_table: FlowTable,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        flows: 1000,
        cities: 100,
        flow_rate_kbps: 16.0,
        duration_s: 2.0,
        seed: 2020,
        shards: 1,
        flow_table: FlowTable::Arena,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--flows" => {
                parsed.flows = value("--flows").parse().expect("--flows: positive integer");
                assert!(parsed.flows >= 1, "--flows: positive integer");
            }
            "--cities" => parsed.cities = value("--cities").parse().expect("--cities: integer"),
            "--flow-rate-kbps" => {
                parsed.flow_rate_kbps =
                    value("--flow-rate-kbps").parse().expect("--flow-rate-kbps: number")
            }
            "--duration-s" => {
                parsed.duration_s = value("--duration-s").parse().expect("--duration-s: seconds")
            }
            "--seed" => parsed.seed = value("--seed").parse().expect("--seed: integer"),
            "--shards" => {
                parsed.shards = value("--shards").parse().expect("--shards: positive integer");
                assert!(parsed.shards >= 1, "--shards: positive integer");
            }
            "--flow-table" => {
                let v = value("--flow-table");
                parsed.flow_table = FlowTable::parse(&v)
                    .unwrap_or_else(|| panic!("unknown flow table {v:?} (apps|arena)"));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut scenario =
        ScenarioBuilder::new(ConstellationChoice::KuiperK1).top_cities(args.cities).build();
    scenario.sim_config.sim_shards = args.shards;

    let rate = DataRate::from_bps((args.flow_rate_kbps * 1e3).round() as u64);
    let duration = SimDuration::from_secs_f64(args.duration_s);
    let p = run_flow_point(&scenario, args.flows, args.flow_table, rate, duration, args.seed);
    // Hand-rolled JSON: every field is a number or a known-safe token.
    println!(
        "{{\"flows\":{},\"flow_table\":\"{}\",\"cities\":{},\"flow_rate_kbps\":{},\
         \"duration_s\":{},\
         \"seed\":{},\"sim_shards\":{},\"events\":{},\"wall_s\":{:.6},\
         \"events_per_sec\":{},\"goodput_gbps\":{:.6},\"jain\":{:.6},\
         \"bytes_per_flow\":{:.1},\"peak_rss_bytes\":{}}}",
        p.flows,
        args.flow_table.name(),
        args.cities,
        args.flow_rate_kbps,
        args.duration_s,
        args.seed,
        p.engine.sim_shards,
        p.events,
        p.wall_s,
        p.events_per_sec.round() as u64,
        p.goodput_gbps,
        p.jain,
        p.bytes_per_flow,
        p.peak_rss_bytes.map_or_else(|| "null".to_string(), |b| b.to_string()),
    );
}
