//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary accepts:
//!
//! * `--full` — run at the paper's parameters (200 s horizons, 100 ms
//!   granularity, 100 cities). Without it, a reduced-scale run that
//!   preserves the qualitative result finishes in minutes on one core.
//! * `--out <dir>` — where to write gnuplot-ready data files (default
//!   `results/`).

use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Paper-scale parameters requested?
    pub full: bool,
    /// Output directory for series files.
    pub out_dir: PathBuf,
}

impl BenchArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> BenchArgs {
        let mut full = false;
        let mut out_dir = PathBuf::from("results");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => full = true,
                "--out" => {
                    out_dir = PathBuf::from(
                        args.next().expect("--out requires a directory argument"),
                    );
                }
                "--help" | "-h" => {
                    eprintln!("options: [--full] [--out <dir>]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        BenchArgs { full, out_dir }
    }

    /// Banner for the scale in use.
    pub fn scale_note(&self) -> &'static str {
        if self.full {
            "scale: FULL (paper parameters)"
        } else {
            "scale: reduced (pass --full for paper parameters)"
        }
    }

    /// Write a two-column series under the output directory.
    pub fn write_series(&self, name: &str, header: &str, points: &[(f64, f64)]) {
        let path = self.out_dir.join(name);
        hypatia_viz::csv::write_series(&path, header, points)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("  wrote {}", path.display());
    }

    /// Write arbitrary text (JSON/CZML documents, ASCII art) under the
    /// output directory.
    pub fn write_text(&self, name: &str, content: &str) {
        let path = self.out_dir.join(name);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
        std::fs::write(&path, content)
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("  wrote {}", path.display());
    }
}

/// The three-constellation pair sweep shared by Figs. 6, 7 and 8.
///
/// Returns `(constellation name, per-pair statistics)` for Telesat T1,
/// Kuiper K1 and Starlink S1 — the paper's comparison set.
pub fn three_constellation_sweep(
    args: &BenchArgs,
) -> Vec<(&'static str, Vec<hypatia::experiments::pair_sweep::PairStats>)> {
    use hypatia::experiments::pair_sweep::{run, PairSweepConfig};
    use hypatia::scenario::ConstellationChoice;
    use hypatia_constellation::ground::top_cities;
    use hypatia_util::SimDuration;

    let (cities, cfg) = if args.full {
        (
            100,
            PairSweepConfig {
                duration: SimDuration::from_secs(200),
                step: SimDuration::from_millis(100),
                min_pair_distance_km: 500.0,
                threads: 0,
            },
        )
    } else {
        (
            40,
            PairSweepConfig {
                duration: SimDuration::from_secs(200),
                step: SimDuration::from_millis(500),
                min_pair_distance_km: 500.0,
                threads: 0,
            },
        )
    };

    let choices = [
        ("Telesat T1", ConstellationChoice::TelesatT1),
        ("Kuiper K1", ConstellationChoice::KuiperK1),
        ("Starlink S1", ConstellationChoice::StarlinkS1),
    ];
    choices
        .into_iter()
        .map(|(name, choice)| {
            eprintln!("  sweeping {name} ({cities} cities)...");
            let c = choice.build(top_cities(cities));
            (name, run(&c, &cfg))
        })
        .collect()
}

/// Print a figure banner.
pub fn banner(figure: &str, title: &str, args: &BenchArgs) {
    println!("==============================================================");
    println!("{figure}: {title}");
    println!("{}", args.scale_note());
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_notes() {
        let a = BenchArgs { full: false, out_dir: PathBuf::from("results") };
        assert!(a.scale_note().contains("reduced"));
        let b = BenchArgs { full: true, out_dir: PathBuf::from("x") };
        assert!(b.scale_note().contains("FULL"));
    }
}
