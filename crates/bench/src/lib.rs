//! Shared driver for the figure-regeneration binaries.
//!
//! Every figure binary is a thin shim over the experiment registry in
//! [`hypatia::runner`]: it names its experiment and calls [`run_figure`],
//! which parses the common CLI, materializes the registered
//! [`hypatia::spec::ExperimentSpec`] at the requested
//! scale, applies `--set` overrides, and executes through the shared
//! [`hypatia::runner::ExperimentRunner`] — ending with
//! the run's `manifest.json`.
//!
//! Every binary accepts:
//!
//! * `--full` — run at the paper's parameters (200 s horizons, 100 ms
//!   granularity, 100 cities). Without it, a reduced-scale run that
//!   preserves the qualitative result finishes in minutes on one core.
//! * `--out <dir>` — where to write gnuplot-ready data files (default
//!   `results/`).
//! * `--set key=value` — override any spec field (repeatable), e.g.
//!   `--set duration_s=30 --set "pairs=Paris:Moscow"`.

use hypatia::runner::{ExperimentRunner, RunError, RunPolicy};
use hypatia::spec::ExperimentSpec;
use std::path::PathBuf;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Paper-scale parameters requested?
    pub full: bool,
    /// Output directory for series files.
    pub out_dir: PathBuf,
    /// `--set key=value` spec overrides, in order.
    pub sets: Vec<(String, String)>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs { full: false, out_dir: PathBuf::from("results"), sets: Vec::new() }
    }
}

impl BenchArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> BenchArgs {
        let mut parsed = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        // CLI mistakes are usage errors (exit 2), not panics.
        let usage = |msg: String| -> ! {
            eprintln!("error: {msg}");
            std::process::exit(2);
        };
        while let Some(a) = args.next() {
            match a.as_str() {
                "--full" => parsed.full = true,
                "--out" => match args.next() {
                    Some(dir) => parsed.out_dir = PathBuf::from(dir),
                    None => usage("--out requires a directory argument".to_string()),
                },
                "--set" => {
                    let Some(kv) = args.next() else {
                        usage("--set requires key=value".to_string())
                    };
                    match kv.split_once('=') {
                        Some((k, v)) => parsed.sets.push((k.to_string(), v.to_string())),
                        None => usage(format!("--set expects key=value, got {kv:?}")),
                    }
                }
                "--help" | "-h" => {
                    eprintln!("options: [--full] [--out <dir>] [--set key=value ...]");
                    std::process::exit(0);
                }
                other => usage(format!("unknown argument: {other}")),
            }
        }
        parsed
    }

    /// Banner for the scale in use.
    pub fn scale_note(&self) -> &'static str {
        if self.full {
            "scale: FULL (paper parameters)"
        } else {
            "scale: reduced (pass --full for paper parameters)"
        }
    }
}

/// Print a figure banner.
pub fn banner(figure: &str, title: &str, args: &BenchArgs) {
    println!("==============================================================");
    println!("{figure}: {title}");
    println!("{}", args.scale_note());
    println!("==============================================================");
}

/// Entry point shared by all figure binaries: parse the common CLI and
/// drive `name` through the registry. Exits on failure with the error's
/// class-specific code (`RunError::exit_code`).
pub fn run_figure(name: &str) {
    let args = BenchArgs::parse();
    drive(name, &args);
}

/// Run `name` with pre-parsed arguments. Exits on failure with the
/// error's class-specific code (`RunError::exit_code`).
pub fn drive(name: &str, args: &BenchArgs) {
    if let Err(e) = try_drive(name, args) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}

/// The fallible driver: spec lookup, `--set` overrides, banner, then a
/// supervised run (panic capture, watchdog limits, salvage — see
/// `ExperimentRunner::run_supervised`). Returns the manifest path.
pub fn try_drive(name: &str, args: &BenchArgs) -> Result<PathBuf, RunError> {
    let runner = ExperimentRunner::new();
    let exp = runner.get(name)?;
    if let Some(label) = exp.label() {
        banner(label, exp.title(), args);
    }
    let mut spec = exp.spec(args.full);
    apply_sets(&mut spec, &args.sets)?;
    let policy = RunPolicy::from_spec(&spec);
    runner.run_supervised(spec, args.out_dir.clone(), &policy)
}

/// Apply `--set` overrides to a spec, in order.
pub fn apply_sets(spec: &mut ExperimentSpec, sets: &[(String, String)]) -> Result<(), RunError> {
    for (key, value) in sets {
        spec.set(key, value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_notes() {
        let a = BenchArgs::default();
        assert!(a.scale_note().contains("reduced"));
        let b = BenchArgs { full: true, ..BenchArgs::default() };
        assert!(b.scale_note().contains("FULL"));
    }

    #[test]
    fn sets_apply_in_order() {
        let runner = ExperimentRunner::new();
        let mut spec = runner.spec("fig03_rtt_fluctuations", false).unwrap();
        apply_sets(
            &mut spec,
            &[
                ("duration_s".to_string(), "10".to_string()),
                ("duration_s".to_string(), "20".to_string()),
            ],
        )
        .unwrap();
        assert_eq!(spec.duration, hypatia_util::SimDuration::from_secs(20));
    }

    #[test]
    fn bad_set_is_a_spec_error() {
        let runner = ExperimentRunner::new();
        let mut spec = runner.spec("fig03_rtt_fluctuations", false).unwrap();
        let err = apply_sets(&mut spec, &[("cc".to_string(), "tahoe".to_string())]).unwrap_err();
        assert!(err.to_string().contains("tahoe"), "{err}");
    }
}
