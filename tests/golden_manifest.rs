//! Golden-manifest check for the routing-mode escape hatch: a registered
//! experiment must produce byte-identical artifacts under
//! `routing_mode=incremental` and `routing_mode=full`.
//!
//! The manifest records every artifact's size and FNV-64 checksum, so
//! comparing manifests (modulo the wall-clock `events_per_sec` line)
//! compares the artifact bytes. `ext_failure_resilience` is the probe:
//! it drives the packet simulator (inline and prefetched forwarding
//! states), compiles fault schedules, and samples masked forwarding
//! states — every pipeline the incremental router sits in.

use hypatia::runner::ExperimentRunner;
use hypatia_viz::sink::ArtifactSink;

/// Spec shrink: a small constellation and a short horizon keep the eight
/// runs of the matrix cheap while still crossing fault windows.
const SHRINK: &[(&str, &str)] = &[
    ("constellation", "telesat_t1"),
    ("cities", "12"),
    ("pairs", "Tokyo:Delhi"),
    ("duration_s", "4"),
    ("step_ms", "200"),
    ("fail_fracs", "0.1"),
    ("mttr_s", "2"),
    ("ping_interval_ms", "100"),
];

/// Run `ext_failure_resilience` with the given `--set` overrides and
/// return its manifest with the wall-clock line stripped.
fn manifest_modulo_wallclock(sets: &[(&str, &str)], tag: &str) -> String {
    let runner = ExperimentRunner::new();
    let mut spec = runner.spec("ext_failure_resilience", false).expect("registered");
    for (key, value) in sets {
        spec.set(key, value).unwrap_or_else(|e| panic!("--set {key}={value}: {e}"));
    }
    let dir = std::env::temp_dir().join(format!("hypatia-golden-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut sink = ArtifactSink::new(&dir);
    sink.verbose = false;
    let (path, _sink) = runner.run_with_sink(spec, sink).expect("run succeeds");
    let text = std::fs::read_to_string(&path).expect("manifest readable");
    std::fs::remove_dir_all(&dir).ok();
    text.lines().filter(|l| !l.contains("events_per_sec")).collect::<Vec<_>>().join("\n")
}

#[test]
fn incremental_artifacts_match_full_across_threads_and_faults() {
    for threads in ["1", "4"] {
        for fault in [None, Some(("sat_outage", "12:1:3"))] {
            let mut base: Vec<(&str, &str)> = SHRINK.to_vec();
            base.push(("threads", threads));
            if let Some(window) = fault {
                base.push(window);
            }

            let mut full = base.clone();
            full.push(("routing_mode", "full"));
            let mut incremental = base;
            incremental.push(("routing_mode", "incremental"));

            let tag = format!("t{threads}-fault{}", fault.is_some());
            let a = manifest_modulo_wallclock(&full, &format!("{tag}-full"));
            let b = manifest_modulo_wallclock(&incremental, &format!("{tag}-inc"));
            assert!(a.contains("fnv64"), "manifest should list artifact checksums:\n{a}");
            assert_eq!(
                a,
                b,
                "artifacts diverged between routing modes (threads={threads}, \
                 fault_spec={})",
                fault.is_some()
            );
        }
    }
}
