//! Full-stack equivalence of the sharded conservative engine: the same
//! scenario must produce bit-identical observables at any `sim_shards`
//! count, for both event-queue kinds, with faults in flight — cross-shard
//! packet exchange through barrier mailboxes preserves the serial engine's
//! canonical `(time, key)` event order exactly.

use hypatia::prelude::*;
use hypatia_constellation::ground::top_cities;
use hypatia_fault::{FaultSchedule, FaultSpec, OutageWindow};
use hypatia_netsim::{QueueKind, SimStats};
use hypatia_viz::sink::ArtifactSink;
use std::sync::Arc;

/// One mixed TCP + UDP + ping run over a faulted Kuiper shell, returning a
/// determinism fingerprint: full stats, the ping RTT series, and the
/// engine's own execution report.
fn run_mixed_workload(
    shards: usize,
    queue: QueueKind,
) -> (SimStats, Vec<(SimTime, SimDuration)>, hypatia_netsim::EngineReport) {
    let c = Arc::new(hypatia::constellation::presets::kuiper_k1(top_cities(12)));
    let spec = FaultSpec {
        sat_outages: vec![OutageWindow { target: 20, from_s: 1.0, until_s: 3.0 }],
        ..FaultSpec::default()
    };
    let schedule = Arc::new(FaultSchedule::compile(&spec, &c, SimDuration::from_secs(5)));
    let config = SimConfig::default()
        .with_sim_shards(shards)
        .with_queue(queue)
        .with_faults(schedule)
        .with_gsl_loss(0.05)
        .with_trace_limit(200_000);

    let src = c.gs_node(0);
    let dst = c.gs_node(5);
    let mut sim = Simulator::new(c, config, vec![src, dst]);

    let tcp = TcpConfig::default();
    sim.add_app(dst, 80, Box::new(TcpSink::new(tcp.clone())));
    sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp, Box::new(NewReno::new()))));
    sim.add_app(dst, 50, Box::new(UdpSink::new()));
    sim.add_app(
        src,
        51,
        Box::new(UdpSource::new(dst, 1, DataRate::from_mbps(2), 1200, SimTime::from_secs(4))),
    );
    let ping = sim.add_app(
        src,
        7,
        Box::new(PingApp::new(dst, SimDuration::from_millis(50), SimTime::from_secs(4))),
    );

    sim.run_until(SimTime::from_secs(5));
    let ping_app: &PingApp = sim.app_as(ping).unwrap();
    (sim.stats.clone(), ping_app.rtts().to_vec(), sim.engine_report())
}

#[test]
fn sharded_runs_match_serial_at_every_shard_count() {
    for queue in [QueueKind::Calendar, QueueKind::Heap] {
        let (serial_stats, serial_rtts, serial_report) = run_mixed_workload(1, queue);
        assert_eq!(serial_report.sim_shards, 1);
        assert!(!serial_rtts.is_empty(), "workload produced no pings");
        assert!(serial_stats.delivered > 0, "workload delivered nothing");

        for shards in [2, 4, 8] {
            let (stats, rtts, report) = run_mixed_workload(shards, queue);
            assert_eq!(report.sim_shards, shards, "queue={queue:?}");
            assert!(report.epochs > 0, "sharded engine ran no epochs");
            assert_eq!(stats, serial_stats, "stats diverged: shards={shards} queue={queue:?}");
            assert_eq!(rtts, serial_rtts, "RTTs diverged: shards={shards} queue={queue:?}");
        }
    }
}

/// Spec shrink for the fig02 golden-manifest matrix: a small constellation,
/// one tiny rate point, and a mid-run satellite outage, with the wall-clock
/// slowdown artifacts disabled so every remaining artifact is deterministic.
const SHRINK: &[(&str, &str)] = &[
    ("constellation", "telesat_t1"),
    ("cities", "10"),
    ("duration_s", "2"),
    ("step_ms", "200"),
    ("line_rates_mbps", "1,2"),
    ("sat_outage", "12:0.5:1.5"),
    ("slowdown", "false"),
];

/// Run `fig02_scalability` with the given overrides and return its manifest
/// with the wall-clock rate and the engine-telemetry block stripped (both
/// legitimately vary across shard counts; artifact checksums must not).
fn fig02_manifest(sets: &[(&str, &str)], tag: &str) -> String {
    let runner = hypatia::runner::ExperimentRunner::new();
    let mut spec = runner.spec("fig02_scalability", false).expect("registered");
    for (key, value) in sets {
        spec.set(key, value).unwrap_or_else(|e| panic!("--set {key}={value}: {e}"));
    }
    let dir = std::env::temp_dir().join(format!("hypatia-sharded-golden-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut sink = ArtifactSink::new(&dir);
    sink.verbose = false;
    let (path, _sink) = runner.run_with_sink(spec, sink).expect("run succeeds");
    let text = std::fs::read_to_string(&path).expect("manifest readable");
    std::fs::remove_dir_all(&dir).ok();
    strip_wallclock_and_engine(&text)
}

/// Drop `events_per_sec` lines and the whole `"engine"` object (brace-depth
/// tracked) from a pretty-printed manifest, keeping everything else —
/// including the shard-invariant simulated `"events"` count.
fn strip_wallclock_and_engine(text: &str) -> String {
    let mut out = Vec::new();
    let mut depth = 0usize;
    for line in text.lines() {
        if depth > 0 {
            depth += line.matches('{').count();
            depth -= line.matches('}').count();
            continue;
        }
        if line.trim_start().starts_with("\"engine\": {") {
            depth = 1;
            continue;
        }
        if line.contains("events_per_sec") {
            continue;
        }
        out.push(line);
    }
    out.join("\n")
}

#[test]
fn faulted_fig02_manifest_is_byte_identical_across_engines() {
    for (queue, routing) in
        [("calendar", "incremental"), ("calendar", "full"), ("heap", "incremental")]
    {
        let mut base: Vec<(&str, &str)> = SHRINK.to_vec();
        base.push(("queue", queue));
        base.push(("routing_mode", routing));

        let mut serial = base.clone();
        serial.push(("sim_shards", "1"));
        let reference = fig02_manifest(&serial, &format!("{queue}-{routing}-s1"));
        assert!(reference.contains("fnv64"), "manifest lists artifact checksums:\n{reference}");

        for shards in ["2", "4"] {
            let mut sharded = base.clone();
            sharded.push(("sim_shards", shards));
            let manifest = fig02_manifest(&sharded, &format!("{queue}-{routing}-s{shards}"));
            assert_eq!(
                reference, manifest,
                "artifacts diverged at sim_shards={shards} (queue={queue}, routing={routing})"
            );
        }
    }
}
