//! Cross-crate validation: the routing crate's snapshot computations must
//! agree with what packets actually experience in the simulator — the
//! paper's own Fig. 3 validation ("RTTs calculated by networkx and
//! measured in our simulator using pings match closely").

use hypatia::prelude::*;
use hypatia::routing::forwarding::compute_forwarding_state;
use hypatia::util::time::TimeSteps;
use hypatia_constellation::ground::top_cities;
use std::sync::Arc;

fn kuiper(cities: usize) -> Arc<Constellation> {
    Arc::new(hypatia::constellation::presets::kuiper_k1(top_cities(cities)))
}

#[test]
fn ping_rtts_match_computed_envelope() {
    let c = kuiper(30);
    // Istanbul (#14) and Cairo (#6) are both inside the top-30 city set.
    let src = c.gs_node(c.find_gs("Istanbul").unwrap());
    let dst = c.gs_node(c.find_gs("Cairo").unwrap());

    // Computed envelope over the horizon.
    let mut min_ms = f64::INFINITY;
    let mut max_ms: f64 = 0.0;
    for t in TimeSteps::new(SimTime::ZERO, SimTime::from_secs(20), SimDuration::from_millis(100)) {
        let st = compute_forwarding_state(&c, t, &[dst]);
        if let Some(d) = st.distance(src, dst) {
            let ms = 2.0 * d.secs_f64() * 1e3;
            min_ms = min_ms.min(ms);
            max_ms = max_ms.max(ms);
        }
    }
    assert!(min_ms.is_finite(), "pair must be connected");

    // Measured pings.
    let mut sim = Simulator::new(c, SimConfig::default(), vec![src, dst]);
    let app = sim.add_app(
        src,
        7,
        Box::new(PingApp::new(dst, SimDuration::from_millis(50), SimTime::from_secs(20))),
    );
    sim.run_until(SimTime::from_secs(21));
    let ping: &PingApp = sim.app_as(app).unwrap();
    assert!(ping.received() > 350, "received {}", ping.received());

    for &(sent, rtt) in ping.rtts() {
        let ms = rtt.secs_f64() * 1e3;
        // Allow serialization overhead (+) and path-change detours (+),
        // but measured can never beat the best computed path by more than
        // rounding.
        assert!(
            ms >= min_ms - 0.1,
            "ping at {sent} measured {ms} ms below computed minimum {min_ms}"
        );
        assert!(
            ms <= max_ms + 10.0,
            "ping at {sent} measured {ms} ms far above computed maximum {max_ms}"
        );
    }
}

#[test]
fn forwarding_state_paths_are_what_packets_traverse() {
    // Hop counts: the ping's wire hops must equal the computed path length
    // when the path is stable.
    let c = kuiper(10);
    let src = c.gs_node(0);
    let dst = c.gs_node(1);
    let st = compute_forwarding_state(&c, SimTime::ZERO, &[src, dst]);
    let path = match st.path(src, dst) {
        Some(p) => p,
        None => return, // pair not connected at t=0 in the reduced set
    };

    let mut sim = Simulator::new(c, SimConfig::default().frozen(), vec![src, dst]);
    let app = sim.add_app(
        src,
        7,
        Box::new(PingApp::new(dst, SimDuration::from_millis(100), SimTime::from_secs(1))),
    );
    sim.run_until(SimTime::from_secs(2));
    let ping: &PingApp = sim.app_as(app).unwrap();
    assert!(ping.received() > 0);
    // Frozen network: measured RTT = computed RTT + per-hop serialization
    // of the 64 B probe (64 B at 10 Mbps = 51.2 µs per hop, both ways).
    let computed = st.distance(src, dst).unwrap() * 2;
    let hops = (path.len() - 1) as f64;
    let ser_ms = 2.0 * hops * 64.0 * 8.0 / 10e6 * 1e3;
    for &(_, rtt) in ping.rtts() {
        let diff_ms = (rtt.secs_f64() - computed.secs_f64()) * 1e3;
        assert!(
            (diff_ms - ser_ms).abs() < 0.05,
            "RTT - computed = {diff_ms:.4} ms, expected serialization {ser_ms:.4} ms"
        );
    }
}

#[test]
fn routing_drops_packets_when_destination_unreachable() {
    // A pole ground station is outside K1 coverage: pings must be dropped
    // by routing (counted), not delivered or leaked.
    let mut gses = top_cities(3);
    gses.push(GroundStation::new("NorthPole", 89.5, 0.0));
    let c = Arc::new(hypatia::constellation::presets::kuiper_k1(gses));
    let src = c.gs_node(0);
    let pole = c.gs_node(3);
    let mut sim = Simulator::new(c, SimConfig::default(), vec![src, pole]);
    sim.add_app(
        src,
        7,
        Box::new(PingApp::new(pole, SimDuration::from_millis(100), SimTime::from_secs(2))),
    );
    sim.run_until(SimTime::from_secs(3));
    assert!(sim.stats.routing_drops > 0, "expected routing drops");
    assert_eq!(sim.stats.injected, sim.stats.delivered + sim.stats.total_drops());
}
