//! Incremental-repair routing must be indistinguishable from full
//! recomputation — the property the whole PR rests on.
//!
//! A seeded scenario applies the two churn sources the repair engine has
//! to survive: continuous weight drift (satellite motion between
//! snapshots) and edge flips (a randomized fault schedule of satellite
//! outages and ISL cuts). Every forwarding state is compared byte-for-byte
//! (via `Debug`, which covers per-destination distances and next hops
//! exactly) between the incremental and full pipelines, across snapshot
//! partitionings equivalent to 1/2/4/8 worker threads.

use hypatia_constellation::ground::GroundStation;
use hypatia_constellation::gsl::GslConfig;
use hypatia_constellation::isl::IslLayout;
use hypatia_constellation::shell::ShellSpec;
use hypatia_constellation::Constellation;
use hypatia_fault::{FaultSchedule, FaultSpec, FaultState, LinkCut, OutageWindow};
use hypatia_routing::forwarding::ForwardingState;
use hypatia_routing::graph::SnapshotBuffers;
use hypatia_routing::incremental::{IncrementalRouter, RoutingConfig};
use hypatia_routing::parallel::sweep_forwarding_states_with;
use hypatia_util::time::TimeSteps;
use hypatia_util::{SimDuration, SimTime};

fn constellation() -> Constellation {
    Constellation::build(
        "equiv",
        vec![ShellSpec::new("A", 550.0, 6, 6, 53.0)],
        IslLayout::PlusGrid,
        vec![
            GroundStation::new("a", 10.0, 10.0),
            GroundStation::new("b", -20.0, 120.0),
            GroundStation::new("c", 48.0, 2.0),
        ],
        GslConfig::new(25.0),
    )
}

/// Deterministic pseudo-random stream (xorshift64*) — the test must not
/// depend on a random-number crate or wall-clock entropy.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() as f64 / u64::MAX as f64) * (hi - lo)
    }
}

/// A randomized fault scenario: satellite outages and ISL cuts with
/// windows scattered over the horizon, so edges flip off and back on at
/// many snapshot boundaries.
fn random_faults(seed: u64, sats: u64, horizon_s: f64) -> FaultSpec {
    let mut rng = Rng(seed | 1);
    let mut spec = FaultSpec { seed, ..FaultSpec::default() };
    for _ in 0..6 {
        let from_s = rng.f64_in(0.0, horizon_s * 0.8);
        spec.sat_outages.push(OutageWindow {
            target: rng.below(sats) as u32,
            from_s,
            until_s: from_s + rng.f64_in(0.5, horizon_s * 0.3),
        });
    }
    for _ in 0..6 {
        let a = rng.below(sats) as u32;
        // A plus-grid neighbour guess; compile ignores cuts of absent links,
        // which is fine — enough of them land on real ISLs.
        let b = (a + 1) % sats as u32;
        let from_s = rng.f64_in(0.0, horizon_s * 0.8);
        spec.isl_cuts.push(LinkCut {
            a,
            b,
            from_s,
            until_s: from_s + rng.f64_in(0.5, horizon_s * 0.3),
        });
    }
    spec
}

/// Replay the masked snapshot sequence the way `sweep_forwarding_states`
/// partitions it across `workers` threads: worker `w` handles steps
/// `w, w + workers, …` with its own buffers and router cache, exactly the
/// per-worker state of the real pipeline.
fn states_partitioned(
    c: &Constellation,
    times: &[SimTime],
    dests: &[hypatia_constellation::NodeId],
    schedule: Option<&FaultSchedule>,
    workers: usize,
    config: RoutingConfig,
) -> Vec<String> {
    let mut out = vec![String::new(); times.len()];
    for w in 0..workers {
        let mut buffers = SnapshotBuffers::new();
        let mut router = IncrementalRouter::new(config);
        let mut state = ForwardingState::empty();
        for (k, &t) in times.iter().enumerate().skip(w).step_by(workers) {
            let mask = schedule.map(|s| FaultState::at(s, t));
            let graph = buffers.snapshot_masked(c, t, mask.as_ref());
            router.compute_into(graph, t, dests, &mut state);
            out[k] = format!("{state:?}");
        }
    }
    out
}

#[test]
fn incremental_matches_full_under_seeded_churn() {
    let c = constellation();
    let dests: Vec<_> = (0..c.num_ground_stations()).map(|i| c.gs_node(i)).collect();
    let horizon = SimDuration::from_secs(20);
    let times: Vec<SimTime> =
        TimeSteps::new(SimTime::ZERO, SimTime::ZERO + horizon, SimDuration::from_millis(500))
            .collect();

    for seed in [3, 1447] {
        let spec = random_faults(seed, c.num_satellites() as u64, horizon.secs_f64());
        let schedule = FaultSchedule::compile(&spec, &c, horizon);
        assert!(!schedule.is_empty(), "seed {seed} produced no fault events");

        // Reference: full recomputation, serial.
        let reference =
            states_partitioned(&c, &times, &dests, Some(&schedule), 1, RoutingConfig::full());
        assert!(reference.iter().all(|s| !s.is_empty()));

        for workers in [1, 2, 4, 8] {
            let incremental = states_partitioned(
                &c,
                &times,
                &dests,
                Some(&schedule),
                workers,
                RoutingConfig::incremental(),
            );
            for (k, (a, b)) in reference.iter().zip(&incremental).enumerate() {
                assert_eq!(a, b, "seed {seed}, {workers} workers: state diverged at step {k}");
            }
        }
    }
}

#[test]
fn sweep_threads_match_full_reference_under_weight_drift() {
    // The real parallel sweep (weight drift only — satellite motion),
    // incremental mode at every thread count vs one full-mode pass.
    let c = constellation();
    let dests: Vec<_> = (0..c.num_ground_stations()).map(|i| c.gs_node(i)).collect();
    let times: Vec<SimTime> =
        TimeSteps::new(SimTime::ZERO, SimTime::from_secs(12), SimDuration::from_millis(400))
            .collect();

    let collect = |threads: usize, routing: RoutingConfig| {
        let mut out = vec![String::new(); times.len()];
        sweep_forwarding_states_with(&c, &times, &dests, threads, routing, |k, state| {
            out[k] = format!("{state:?}");
        });
        out
    };

    let reference = collect(1, RoutingConfig::full());
    for threads in [1, 2, 4, 8] {
        assert_eq!(
            reference,
            collect(threads, RoutingConfig::incremental()),
            "thread count {threads} diverged"
        );
    }
}

#[test]
fn aggressive_churn_threshold_still_byte_identical() {
    // Forcing repairs even under heavy churn (threshold 1.0) and forcing
    // fallbacks always (threshold 0.0) are both allowed to differ in cost
    // only, never in output.
    let c = constellation();
    let dests: Vec<_> = (0..c.num_ground_stations()).map(|i| c.gs_node(i)).collect();
    let horizon = SimDuration::from_secs(10);
    let times: Vec<SimTime> =
        TimeSteps::new(SimTime::ZERO, SimTime::ZERO + horizon, SimDuration::from_millis(500))
            .collect();
    let spec = random_faults(99, c.num_satellites() as u64, horizon.secs_f64());
    let schedule = FaultSchedule::compile(&spec, &c, horizon);

    let reference =
        states_partitioned(&c, &times, &dests, Some(&schedule), 1, RoutingConfig::full());
    for threshold in [0.0, 1.0] {
        let config =
            RoutingConfig { repair_churn_threshold: threshold, ..RoutingConfig::incremental() };
        let got = states_partitioned(&c, &times, &dests, Some(&schedule), 1, config);
        assert_eq!(reference, got, "threshold {threshold} diverged");
    }
}
