//! Cross-crate invariants of the three constellations (paper §2.2, §5.1).

use hypatia::orbit::frames::ecef_to_geodetic;
use hypatia::routing::forwarding::compute_forwarding_state;
use hypatia::scenario::ConstellationChoice;
use hypatia::util::{SimDuration, SimTime};
use hypatia_constellation::ground::top_cities;
use proptest::prelude::*;

#[test]
fn telesat_covers_poles_kuiper_does_not() {
    use hypatia::viz::ground_view::GroundView;
    use hypatia_constellation::GroundStation;
    let pole = GroundStation::new("pole", 88.0, 10.0);
    let kuiper = ConstellationChoice::KuiperK1.build(vec![pole.clone()]);
    let telesat = ConstellationChoice::TelesatT1.build(vec![pole.clone()]);
    assert!(!GroundView::compute(&kuiper, &pole, SimTime::ZERO).is_connected());
    assert!(GroundView::compute(&telesat, &pole, SimTime::ZERO).is_connected());
}

/// Paper §4.1: "For Kuiper, its other two shells do not address this
/// missing connectivity either; high-latitude cities like St. Petersburg
/// will not see continuous connectivity over Kuiper." K2 (42°) and K3
/// (33°) are inclined even lower than K1 (51.9°), so the full
/// three-shell constellation keeps the outage.
#[test]
fn full_kuiper_does_not_fix_st_petersburg() {
    use hypatia::viz::ground_view::connectivity_windows;
    use hypatia_constellation::{presets, GroundStation};
    use hypatia_util::SimDuration;
    let sp = GroundStation::new("Saint Petersburg", 59.9311, 30.3609);
    let c = presets::kuiper_full(vec![sp.clone()]);
    assert_eq!(c.num_satellites(), 3_236);
    let windows =
        connectivity_windows(&c, &sp, SimDuration::from_secs(600), SimDuration::from_secs(10));
    assert!(
        windows.iter().any(|w| !w.connected),
        "all three Kuiper shells together must still leave outages: {windows:?}"
    );
}

#[test]
fn satellite_rtt_never_beats_geodesic() {
    // Physical lower bound across constellations and pairs at several
    // instants.
    for choice in [ConstellationChoice::KuiperK1, ConstellationChoice::TelesatT1] {
        let c = choice.build(top_cities(8));
        let dests: Vec<_> = (0..8).map(|i| c.gs_node(i)).collect();
        for secs in [0u64, 30, 90] {
            let st = compute_forwarding_state(&c, SimTime::from_secs(secs), &dests);
            for i in 0..8 {
                for j in 0..8 {
                    if i == j {
                        continue;
                    }
                    if let Some(d) = st.distance(c.gs_node(i), c.gs_node(j)) {
                        let geodesic = c.ground_stations[i].geodesic_rtt(&c.ground_stations[j]);
                        assert!(
                            d * 2 + SimDuration::from_micros(1) >= geodesic,
                            "{} {i}->{j} at t={secs}: RTT {} < geodesic {}",
                            choice.name(),
                            d * 2,
                            geodesic
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn starlink_s1_leaves_high_latitudes_uncovered() {
    // Paper §2.2: S1 "will not extend service to less populated regions at
    // high latitudes".
    use hypatia::viz::ground_view::GroundView;
    use hypatia_constellation::GroundStation;
    let tromso = GroundStation::new("Tromso", 69.65, 18.96);
    let c = ConstellationChoice::StarlinkS1.build(vec![tromso.clone()]);
    for secs in [0u64, 60, 120, 180] {
        assert!(
            !GroundView::compute(&c, &tromso, SimTime::from_secs(secs)).is_connected(),
            "69.6°N unexpectedly covered by S1 (i=53°, l=25°) at t={secs}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite ground tracks never exceed their shell's inclination.
    #[test]
    fn ground_track_latitude_bounded(sat_idx in 0usize..1156, secs in 0u64..6000) {
        let c = ConstellationChoice::KuiperK1.build(vec![]);
        let geo = ecef_to_geodetic(c.sat_position_ecef(sat_idx, SimTime::from_secs(secs)));
        prop_assert!(geo.latitude_deg.abs() <= 51.9 + 0.2,
            "sat {sat_idx} at lat {}", geo.latitude_deg);
        // Altitude stays at the shell's nominal height (circular orbits).
        prop_assert!((geo.altitude_km - 630.0).abs() < 5.0,
            "sat {sat_idx} at altitude {}", geo.altitude_km);
    }

    /// Forwarding state is symmetric in reachability: if A reaches B, then
    /// B reaches A (the graph is undirected).
    #[test]
    fn reachability_is_symmetric(secs in 0u64..300) {
        let c = ConstellationChoice::KuiperK1.build(top_cities(5));
        let dests: Vec<_> = (0..5).map(|i| c.gs_node(i)).collect();
        let st = compute_forwarding_state(&c, SimTime::from_secs(secs), &dests);
        for i in 0..5 {
            for j in 0..5 {
                let ab = st.distance(c.gs_node(i), c.gs_node(j));
                let ba = st.distance(c.gs_node(j), c.gs_node(i));
                prop_assert_eq!(ab.is_some(), ba.is_some());
                if let (Some(x), Some(y)) = (ab, ba) {
                    prop_assert_eq!(x, y, "asymmetric distance {}<->{}", i, j);
                }
            }
        }
    }
}
