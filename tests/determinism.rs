//! Full-stack determinism: identical scenarios produce bit-identical
//! results — the property that makes simulation studies reproducible.

use hypatia::prelude::*;
use hypatia_constellation::ground::top_cities;
use std::sync::Arc;

fn run_mixed_workload(seed_city: usize) -> (u64, u64, u64, Vec<(SimTime, SimDuration)>) {
    let c = Arc::new(hypatia::constellation::presets::kuiper_k1(top_cities(12)));
    let src = c.gs_node(seed_city);
    let dst = c.gs_node(seed_city + 3);
    let mut sim = Simulator::new(c, SimConfig::default(), vec![src, dst]);

    // Mixed traffic: TCP + UDP + pings between the same pair.
    let tcp = TcpConfig::default();
    sim.add_app(dst, 80, Box::new(TcpSink::new(tcp.clone())));
    sim.add_app(src, 70, Box::new(TcpSender::new(dst, 80, tcp, Box::new(NewReno::new()))));
    sim.add_app(dst, 50, Box::new(UdpSink::new()));
    sim.add_app(
        src,
        51,
        Box::new(UdpSource::new(dst, 1, DataRate::from_mbps(2), 1200, SimTime::from_secs(5))),
    );
    let ping = sim.add_app(
        src,
        7,
        Box::new(PingApp::new(dst, SimDuration::from_millis(25), SimTime::from_secs(5))),
    );

    sim.run_until(SimTime::from_secs(6));
    let ping_app: &PingApp = sim.app_as(ping).unwrap();
    (
        sim.stats.events,
        sim.stats.delivered,
        sim.stats.payload_bytes_delivered,
        ping_app.rtts().to_vec(),
    )
}

#[test]
fn identical_runs_are_bit_identical() {
    let a = run_mixed_workload(0);
    let b = run_mixed_workload(0);
    assert_eq!(a.0, b.0, "event counts differ");
    assert_eq!(a.1, b.1, "deliveries differ");
    assert_eq!(a.2, b.2, "payload bytes differ");
    assert_eq!(a.3, b.3, "ping RTT series differ");
}

#[test]
fn different_pairs_give_different_results() {
    // Sanity that the fingerprint above is actually sensitive.
    let a = run_mixed_workload(0);
    let b = run_mixed_workload(1);
    assert_ne!(a.3, b.3, "different pairs produced identical RTT series");
}

#[test]
fn permutation_matrix_is_seed_stable() {
    use hypatia::util::rng::DetRng;
    let a = DetRng::new(99).permutation_pairs(100);
    let b = DetRng::new(99).permutation_pairs(100);
    assert_eq!(a, b);
    let c = DetRng::new(100).permutation_pairs(100);
    assert_ne!(a, c);
}
