//! The paper's TLE-generation pipeline, end to end: Keplerian elements →
//! TLE text → parse → propagate, with the parsed constellation matching
//! the original ("to test that the output TLEs specify the same
//! constellation as the input Keplerian orbital elements" — §3.1).

use hypatia::orbit::propagate::Propagator;
use hypatia::orbit::tle::Tle;
use hypatia::scenario::ConstellationChoice;
use hypatia::util::SimTime;

#[test]
fn tle_round_trip_preserves_positions() {
    let c = ConstellationChoice::KuiperK1.build(vec![]);
    let tles = c.generate_tles(24);
    assert_eq!(tles.len(), 1156);

    // Parse every 97th TLE back and compare propagated positions over a
    // 200 s horizon (full-set comparison is done for a sample to keep the
    // test fast; the formatting path is identical for all).
    for (i, tle) in tles.iter().enumerate().step_by(97) {
        let parsed = Tle::parse(tle.name.clone(), &tle.format_line1(), &tle.format_line2())
            .unwrap_or_else(|e| panic!("TLE {i} failed to parse: {e}"));
        let reparsed_prop = Propagator::j2(parsed.to_elements());
        let original_prop = c.satellites[i].propagator;
        for secs in [0u64, 100, 200] {
            let t = SimTime::from_secs(secs);
            let d = reparsed_prop.position_at(t).distance(original_prop.position_at(t));
            // TLE fields quantize angles to 1e-4 deg and mean motion to
            // 1e-8 rev/day: sub-kilometre round-trip error.
            assert!(d < 1.5, "satellite {i} drifted {d} km after TLE round trip at t={secs}");
        }
    }
}

#[test]
fn all_generated_tles_are_format_valid() {
    let c = ConstellationChoice::TelesatT1.build(vec![]);
    for tle in c.generate_tles(24) {
        let l1 = tle.format_line1();
        let l2 = tle.format_line2();
        assert_eq!(l1.len(), 69);
        assert_eq!(l2.len(), 69);
        // Checksums are validated by the parser.
        Tle::parse(tle.name.clone(), &l1, &l2).expect("valid TLE");
    }
}

#[test]
fn catalog_numbers_are_unique() {
    let c = ConstellationChoice::StarlinkS1.build(vec![]);
    let tles = c.generate_tles(24);
    let mut nums: Vec<u32> = tles.iter().map(|t| t.catalog_number).collect();
    nums.sort_unstable();
    nums.dedup();
    assert_eq!(nums.len(), 1584);
}
