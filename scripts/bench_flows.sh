#!/usr/bin/env bash
# Benchmark offered-load scaling (the ext_flow_scaling gravity workload)
# and append the results to BENCH_flows.json.
#
# Runs `bench_flows` (crates/bench/src/bin/bench_flows.rs) once per flow
# count, 1k -> 1M, over the 100-city Kuiper K1 ground segment. One process
# per point is deliberate: peak RSS is read from VmHWM, a process-lifetime
# high-water mark, so per-point numbers require per-point processes. Each
# line records events/sec, goodput, Jain fairness, steady-state bytes per
# flow, and peak RSS.
#
# Each invocation APPENDS one timestamped entry to the output file (a JSON
# array), so the file accumulates a history across machines/commits.
#
# Usage: scripts/bench_flows.sh [output.json] [flow counts...]

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_flows.json}"
shift $(( $# > 0 ? 1 : 0 ))
counts=("${@:-}")
if [ -z "${counts[0]:-}" ]; then
    counts=(1000 10000 100000 1000000)
fi

cargo build --release -p hypatia-bench --bin bench_flows
bin="target/release/bench_flows"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

for flows in "${counts[@]}"; do
    echo "== $flows flows (100 cities, 2s sim, 16 kbps/flow) ==" >&2
    "$bin" --flows "$flows" --cities 100 --flow-rate-kbps 16 \
        --duration-s 2 >>"$raw"
done

python3 - "$raw" "$out" <<'PY'
import json, os, subprocess, sys, time

raw_path, out_path = sys.argv[1], sys.argv[2]

runs = [json.loads(line) for line in open(raw_path) if line.strip()]
for run in runs:
    rss = run.get("peak_rss_bytes")
    rss_mb = f"{rss / 2**20:,.0f} MB" if rss else "-"
    print(f"  {run['flows']:>9,} flows  {run['events_per_sec']:>12,} events/s  "
          f"jain={run['jain']:.4f}  {run['bytes_per_flow']:.1f} B/flow  "
          f"peak RSS {rss_mb}")

entry = {
    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "bench": "bench_flows (gravity traffic matrix, arena flow tables)",
    "cores": os.cpu_count(),
    "runs": runs,
}
try:
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    entry["commit"] = commit
except Exception:
    pass

try:
    history = json.load(open(out_path))
    if not isinstance(history, list):
        history = [history]
except (FileNotFoundError, json.JSONDecodeError):
    history = []
history.append(entry)
json.dump(history, open(out_path, "w"), indent=2)
print()
print(f"wrote {out_path}: {len(runs)} points")
PY
