#!/usr/bin/env bash
# Benchmark the snapshot-routing pipeline and emit BENCH_routing.json.
#
# Runs the Criterion bench `snapshot_pipeline` (serial allocating vs
# CSR+scratch reuse vs 4-thread parallel sweep, see
# crates/bench/benches/snapshot_pipeline.rs) and condenses the results
# into a small machine-readable JSON file with the speedups the design
# targets: parallel ≥ 2x at 4 threads, reuse ≥ alloc.
#
# Usage: scripts/bench_routing.sh [output.json]

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_routing.json}"

raw=$(cargo bench -p hypatia-bench --bench snapshot_pipeline -- --output-format bencher 2>&1)
echo "$raw"

# Bencher lines look like:
#   test snapshot_pipeline/serial_alloc_24_steps ... bench: 12345678 ns/iter (+/- 99)
echo "$raw" | python3 -c '
import json, re, sys

ns = {}
for line in sys.stdin:
    m = re.match(r"test\s+(\S+)\s+\.\.\.\s+bench:\s+([\d,]+)\s+ns/iter", line)
    if m:
        ns[m.group(1).split("/")[-1]] = int(m.group(2).replace(",", ""))

def ratio(a, b):
    return round(ns[a] / ns[b], 3) if a in ns and b in ns and ns[b] else None

result = {
    "bench": "snapshot_pipeline",
    "ns_per_iter": ns,
    "speedup_reuse_over_alloc": ratio("serial_alloc_24_steps", "serial_reuse_24_steps"),
    "speedup_parallel4_over_alloc": ratio("serial_alloc_24_steps", "parallel_4_24_steps"),
    "speedup_parallel4_over_reuse": ratio("serial_reuse_24_steps", "parallel_4_24_steps"),
}
json.dump(result, open(sys.argv[1], "w"), indent=2)
print()
print(f"wrote {sys.argv[1]}: {json.dumps(result)}")
' "$out"
