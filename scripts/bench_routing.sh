#!/usr/bin/env bash
# Benchmark the snapshot-routing pipeline and append the results to
# BENCH_routing.json.
#
# Runs `bench_routing` (crates/bench/src/bin/bench_routing.rs) over the
# fig09-style granularity axis (forwarding-state step 50/100/1000 ms) and
# three fault-churn levels (no faults, 5% and 10% satellite flap
# unavailability), under both routing modes — full Dijkstra recomputation
# per snapshot vs the incremental repair engine — and records
# snapshots/sec per combination plus the incremental-over-full speedup
# the design targets (> 1x wherever consecutive snapshots are similar,
# i.e. at fine granularity).
#
# Each invocation APPENDS one timestamped entry to the output file (a JSON
# array), so the file accumulates a history across machines/commits.
#
# Usage: scripts/bench_routing.sh [output.json]

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_routing.json}"

cargo build --release -p hypatia-bench --bin bench_routing
bin="target/release/bench_routing"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

for step_ms in 50 100 1000; do
    for fail_frac in 0 0.05 0.1; do
        echo "== step_ms=$step_ms fail_frac=$fail_frac ==" >&2
        "$bin" --step-ms "$step_ms" --fail-frac "$fail_frac" \
            --duration-s 10 --mode both >>"$raw"
    done
done

python3 - "$raw" "$out" <<'PY'
import json, os, subprocess, sys, time

raw_path, out_path = sys.argv[1], sys.argv[2]

runs = [json.loads(line) for line in open(raw_path) if line.strip()]
for run in runs:
    print(f"  step {run['step_ms']:>6}ms frac {run['fail_frac']:<5} "
          f"{run['mode']:<12} {run['snapshots_per_sec']:>9,.1f} snapshots/s")

def wall(step_ms, fail_frac, mode):
    sel = [r for r in runs
           if r["step_ms"] == step_ms and r["fail_frac"] == fail_frac
           and r["mode"] == mode]
    return sum(r["wall_s"] for r in sel)

speedup = {}
for step_ms in sorted({r["step_ms"] for r in runs}):
    for fail_frac in sorted({r["fail_frac"] for r in runs}):
        full = wall(step_ms, fail_frac, "full")
        inc = wall(step_ms, fail_frac, "incremental")
        if full > 0 and inc > 0:
            key = f"step{step_ms:g}ms_frac{fail_frac:g}"
            speedup[key] = round(full / inc, 3)

entry = {
    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "bench": "bench_routing (fig09 granularity x fault churn)",
    # Host core count (nproc), matching the other bench appenders: lets
    # readers compare entries recorded on different machines.
    "cores": os.cpu_count(),
    "runs": runs,
    "speedup_incremental_over_full": speedup,
}
try:
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    entry["commit"] = commit
except Exception:
    pass

try:
    history = json.load(open(out_path))
    if not isinstance(history, list):
        history = [history]
except (FileNotFoundError, json.JSONDecodeError):
    history = []
history.append(entry)
json.dump(history, open(out_path, "w"), indent=2)
print()
print(f"wrote {out_path}: speedup incremental/full = {json.dumps(speedup)}")
PY
