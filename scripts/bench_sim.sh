#!/usr/bin/env bash
# Benchmark the packet simulator's event engine and append the results to
# BENCH_netsim.json.
#
# Runs `bench_netsim` (crates/bench/src/bin/bench_netsim.rs) on the Fig. 2
# permutation workload at two scales — small (10 cities) and medium
# (30 cities) — under both event-queue implementations, and records
# events/sec per (scale, queue, workload) plus the calendar-over-heap
# speedup the design targets (>= 2x on the fig02 workload).
#
# A second sweep runs the medium workload on the sharded conservative
# engine at sim_shards in {1, 2, 4, 8} (calendar queue) and records
# events/sec per shard count plus each count's speedup over the serial
# engine — observables are bit-identical at every point, so the sweep
# measures pure wall-clock effect.
#
# The line rate is 10 Gbit/s — fig02's top rate and the regime the paper
# identifies as event-rate-bound (§3.2), where queue cost dominates. Sim
# durations are short (fractions of a second) because at 10 Gbit/s each
# simulated second is tens of millions of events.
#
# Each invocation APPENDS one timestamped entry to the output file (a JSON
# array), so the file accumulates a history across machines/commits.
#
# Usage: scripts/bench_sim.sh [output.json]

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_netsim.json}"

cargo build --release -p hypatia-bench --bin bench_netsim
bin="target/release/bench_netsim"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

for scale_spec in small:10:0.5 medium:30:0.2; do
    IFS=: read -r scale cities duration <<<"$scale_spec"
    for queue in heap calendar; do
        echo "== $scale ($cities cities, ${duration}s sim), queue=$queue ==" >&2
        "$bin" --queue "$queue" --cities "$cities" --rate-mbps 10000 \
            --duration-s "$duration" --workload both |
            while IFS= read -r line; do
                printf '%s\t%s\n' "$scale" "$line"
            done >>"$raw"
    done
done

for shards in 1 2 4 8; do
    echo "== sharded (30 cities, 0.2s sim), sim_shards=$shards ==" >&2
    "$bin" --queue calendar --cities 30 --rate-mbps 10000 \
        --duration-s 0.2 --workload both --shards "$shards" |
        while IFS= read -r line; do
            printf '%s\t%s\n' "sharded" "$line"
        done >>"$raw"
done

python3 - "$raw" "$out" <<'PY'
import json, os, subprocess, sys, time

raw_path, out_path = sys.argv[1], sys.argv[2]

runs = []
for line in open(raw_path):
    scale, payload = line.rstrip("\n").split("\t", 1)
    run = json.loads(payload)
    run["scale"] = scale
    runs.append(run)
    shards = f" shards={run['sim_shards']}" if scale == "sharded" else ""
    print(f"  {scale:<7} {run['queue']:<9} {run['workload']:<4} "
          f"{run['events_per_sec']:>12,} events/s{shards}")

def eps(scale, queue):
    # Combined UDP+TCP throughput at one (scale, queue): total events over
    # total wall time, not a mean of ratios.
    sel = [r for r in runs if r["scale"] == scale and r["queue"] == queue]
    wall = sum(r["wall_s"] for r in sel)
    return round(sum(r["events"] for r in sel) / wall) if wall > 0 else 0

scales = ["small", "medium"]
summary = {s: {q: eps(s, q) for q in ("heap", "calendar")} for s in scales}
speedup = {
    s: round(summary[s]["calendar"] / summary[s]["heap"], 3)
    for s in scales
    if summary[s]["heap"]
}

def eps_shards(n):
    sel = [r for r in runs if r["scale"] == "sharded" and r.get("sim_shards") == n]
    wall = sum(r["wall_s"] for r in sel)
    return round(sum(r["events"] for r in sel) / wall) if wall > 0 else 0

shard_counts = sorted(
    r["sim_shards"] for r in runs if r["scale"] == "sharded" and "sim_shards" in r
)
sharded = {str(n): eps_shards(n) for n in dict.fromkeys(shard_counts)}
speedup_sharded = {
    k: round(v / sharded["1"], 3)
    for k, v in sharded.items()
    if k != "1" and sharded.get("1")
}

entry = {
    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "bench": "bench_netsim (fig02 permutation workload)",
    "threads": 1,
    # Host core count (nproc): lets readers tell overhead-bound
    # single-core shard entries apart from real multi-core speedups.
    "cores": os.cpu_count(),
    "runs": runs,
    "events_per_sec": summary,
    "speedup_calendar_over_heap": speedup,
    "events_per_sec_sharded": sharded,
    "speedup_sharded_over_serial": speedup_sharded,
}
try:
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    entry["commit"] = commit
except Exception:
    pass

try:
    history = json.load(open(out_path))
    if not isinstance(history, list):
        history = [history]
except (FileNotFoundError, json.JSONDecodeError):
    history = []
history.append(entry)
json.dump(history, open(out_path, "w"), indent=2)
print()
print(f"wrote {out_path}: speedup calendar/heap = {json.dumps(speedup)}, "
      f"sharded/serial = {json.dumps(speedup_sharded)}")
PY
