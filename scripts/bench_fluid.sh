#!/usr/bin/env bash
# Benchmark the hybrid fluid/packet engine (the ext_hybrid_mode gravity
# workload) and append the results to BENCH_fluid.json.
#
# Runs `bench_hybrid` (crates/bench/src/bin/bench_hybrid.rs) once per
# (flow count, simulation mode) pair over the 100-city Kuiper K1 ground
# segment — one process per point so wall-clock numbers never share
# allocator warm-up. Each line records events, events/sec, goodput, Jain
# fairness, the fluid solver's flow and re-solve counts, and the control
# overlay's ping RTT samples. The headline number is the hybrid-over-
# packet wall-clock speedup at the largest flow count: both modes
# simulate the same two virtual seconds of the same workload, so
# packet_wall / hybrid_wall is how much faster the hybrid engine gets
# through it (the design targets >= 5x at 100k bulk flows).
#
# Each invocation APPENDS one timestamped entry to the output file (a JSON
# array), so the file accumulates a history across machines/commits.
#
# Usage: scripts/bench_fluid.sh [output.json] [flow counts...]

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_fluid.json}"
shift $(( $# > 0 ? 1 : 0 ))
counts=("${@:-}")
if [ -z "${counts[0]:-}" ]; then
    counts=(10000 100000)
fi

cargo build --release -p hypatia-bench --bin bench_hybrid
bin="${CARGO_TARGET_DIR:-target}/release/bench_hybrid"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

for flows in "${counts[@]}"; do
    for mode in packet fluid hybrid; do
        echo "== $flows flows, mode=$mode (100 cities, 2s sim, 256 kbps/flow) ==" >&2
        "$bin" --flows "$flows" --mode "$mode" --cities 100 \
            --flow-rate-kbps 256 --duration-s 2 >>"$raw"
    done
done

python3 - "$raw" "$out" <<'PY'
import json, os, subprocess, sys, time

raw_path, out_path = sys.argv[1], sys.argv[2]

runs = [json.loads(line) for line in open(raw_path) if line.strip()]
for run in runs:
    print(f"  {run['flows']:>9,} flows  {run['mode']:<7} "
          f"{run['events_per_sec']:>12,} events/s  "
          f"goodput={run['goodput_gbps']:.4f} Gbps  jain={run['jain']:.4f}  "
          f"resolves={run['fluid_resolves']}")

def wall(flows, mode):
    return sum(r["wall_s"] for r in runs
               if r["flows"] == flows and r["mode"] == mode)

# Same virtual duration and workload in every mode, so the wall-clock
# ratio is the engine speedup (events/sec is incomparable across modes:
# the fluid solver's whole point is to need almost no events).
speedup = {}
for flows in sorted({r["flows"] for r in runs}):
    packet = wall(flows, "packet")
    for mode in ("fluid", "hybrid"):
        this = wall(flows, mode)
        if packet and this:
            speedup[f"{mode}_{flows}"] = round(packet / this, 3)

entry = {
    "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    "bench": "bench_hybrid (gravity bulk flows, packet vs fluid vs hybrid)",
    # Host core count (nproc), matching the other bench appenders: lets
    # readers compare entries recorded on different machines.
    "cores": os.cpu_count(),
    "runs": runs,
    "speedup_over_packet": speedup,
}
try:
    commit = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        capture_output=True, text=True, check=True,
    ).stdout.strip()
    entry["commit"] = commit
except Exception:
    pass

try:
    history = json.load(open(out_path))
    if not isinstance(history, list):
        history = [history]
except (FileNotFoundError, json.JSONDecodeError):
    history = []
history.append(entry)
json.dump(history, open(out_path, "w"), indent=2)
print()
print(f"wrote {out_path}: speedup over packet = {json.dumps(speedup)}")
PY
