#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo bench --no-run"
cargo bench --workspace --no-run

echo "All checks passed."
