#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo bench --no-run"
cargo bench --workspace --no-run

echo "== bench_routing compile + smoke (incremental repair engine)"
cargo build --release -q -p hypatia-bench --bin bench_routing
target/release/bench_routing --constellation telesat_t1 --cities 8 \
  --duration-s 2 --step-ms 200 --fail-frac 0.1 --mttr-s 2 --mode both

echo "== ext_failure_resilience smoke run (spec round-trip + faulted sim)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_failure_resilience --print-spec \
  --set duration_s=5 --set cities=10 --set pairs="Tokyo:Cairo" \
  --set fail_fracs=0.1 --set mttr_s=5 \
  --set routing_mode=incremental --set repair_churn_threshold=0.2 \
  > "$smoke_dir/spec.json"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  --spec "$smoke_dir/spec.json" --out "$smoke_dir/out" > /dev/null
test -f "$smoke_dir/out/manifest.json"
test -f "$smoke_dir/out/ext_failure_goodput.dat"

echo "== sharded engine smoke run (sim_shards=4, faulted) + shard determinism"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_failure_resilience --out "$smoke_dir/sharded" \
  --set duration_s=4 --set cities=10 --set pairs="Tokyo:Cairo" \
  --set fail_fracs=0.1 --set mttr_s=2 --set sim_shards=4 > /dev/null
test -f "$smoke_dir/sharded/manifest.json"
grep -q '"sim_shards": 4' "$smoke_dir/sharded/manifest.json"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_failure_resilience --out "$smoke_dir/serial" \
  --set duration_s=4 --set cities=10 --set pairs="Tokyo:Cairo" \
  --set fail_fracs=0.1 --set mttr_s=2 --set sim_shards=1 > /dev/null
# Byte-identity gate: artifact checksums must not depend on the shard
# count; only the wall-clock rate and engine-telemetry lines may differ.
strip_engine() {
  python3 - "$1" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
doc.pop("perf", None)
print(json.dumps(doc, indent=2, sort_keys=True))
PY
}
diff <(strip_engine "$smoke_dir/sharded/manifest.json") \
     <(strip_engine "$smoke_dir/serial/manifest.json")

echo "== ext_flow_scaling smoke run (10k gravity flows, trace sampling on)"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_flow_scaling --out "$smoke_dir/flows10k" \
  --set flows=10000 --set trace_sample_every=8 \
  --set cities=20 --set duration_s=1 > /dev/null
test -f "$smoke_dir/flows10k/manifest.json"
test -f "$smoke_dir/flows10k/ext_flow_scaling_events_per_sec.dat"
grep -q 'trace sampling active' "$smoke_dir/flows10k/manifest.json"

echo "== flow-table determinism gate (1k flows, sampling off: arena vs apps)"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_flow_scaling --out "$smoke_dir/flows_arena" \
  --set flows=1000 --set flow_table=arena --set perf_series=false \
  --set cities=20 --set duration_s=1 > /dev/null
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_flow_scaling --out "$smoke_dir/flows_apps" \
  --set flows=1000 --set flow_table=apps --set perf_series=false \
  --set cities=20 --set duration_s=1 > /dev/null
# Byte-identity gate: arena flow tables must reproduce the per-flow-apps
# artifacts exactly; only wall-clock perf lines may differ.
diff <(strip_engine "$smoke_dir/flows_arena/manifest.json") \
     <(strip_engine "$smoke_dir/flows_apps/manifest.json")

echo "== sim_mode spec round-trip (hybrid knobs survive --print-spec)"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_hybrid_mode --print-spec \
  --set sim_mode=hybrid --set fluid_threshold_kbps=64 \
  > "$smoke_dir/hybrid_spec.json"
grep -q '"sim_mode": "hybrid"' "$smoke_dir/hybrid_spec.json"
grep -q '"fluid_threshold_kbps": 64' "$smoke_dir/hybrid_spec.json"

echo "== ext_hybrid_mode smoke run (400 gravity flows, all three modes)"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_hybrid_mode --out "$smoke_dir/hybrid" \
  --set flows=400 --set cities=10 --set flow_rate_kbps=64 > /dev/null
test -f "$smoke_dir/hybrid/manifest.json"
test -f "$smoke_dir/hybrid/ext_hybrid_packet_goodput.dat"
test -f "$smoke_dir/hybrid/ext_hybrid_fluid_goodput.dat"
test -f "$smoke_dir/hybrid/ext_hybrid_hybrid_goodput.dat"

echo "== hybrid-vs-packet goodput tolerance gate (fig02-scale workload)"
# The hybrid engine must reproduce the packet reference's goodput within
# 5% and its Jain index within 0.05 on an unbottlenecked bulk workload.
python3 - "$smoke_dir/hybrid" <<'PY'
import sys

def series(path):
    rows = {}
    for line in open(path):
        if line.startswith("#") or not line.strip():
            continue
        x, y = line.split()
        rows[float(x)] = float(y)
    return rows

base = sys.argv[1]
for metric, tol, relative in (("goodput", 0.05, True), ("jain", 0.05, False)):
    packet = series(f"{base}/ext_hybrid_packet_{metric}.dat")
    hybrid = series(f"{base}/ext_hybrid_hybrid_{metric}.dat")
    assert packet.keys() == hybrid.keys(), (metric, packet, hybrid)
    for flows, ref in packet.items():
        diff = abs(hybrid[flows] - ref)
        if relative:
            assert ref > 0, (metric, flows, ref)
            diff /= ref
        assert diff <= tol, (metric, flows, ref, hybrid[flows], diff)
print("hybrid-vs-packet tolerance gate passed")
PY

echo "== crash resilience: audit smoke + kill -9 mid-flight + resume"
cargo build --release -q -p hypatia-bench --bin run_experiment
resilience_args=(fig02_scalability --set cities=10 --set duration_s=4
  --set line_rates_mbps=10 --set slowdown=false --set audit=true
  --set checkpoint_every_s=0.5)
# Reference leg: uninterrupted, checkpointing and auditing all the way.
target/release/run_experiment "${resilience_args[@]}" \
  --out "$smoke_dir/resilience_ref" > /dev/null
! grep -q '"status"' "$smoke_dir/resilience_ref/manifest.json"
grep -q '"checkpoints"' "$smoke_dir/resilience_ref/manifest.json"
grep -q '"violations": \[\]' "$smoke_dir/resilience_ref/manifest.json"

# Victim leg: SIGKILL as soon as the first snapshot lands on disk.
target/release/run_experiment "${resilience_args[@]}" \
  --out "$smoke_dir/resilience_kill" > /dev/null 2>&1 &
victim=$!
for _ in $(seq 1 600); do
  if ls "$smoke_dir/resilience_kill/checkpoints/"*.snap > /dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
kill -9 "$victim" 2> /dev/null || true
wait "$victim" 2> /dev/null || true
ls "$smoke_dir/resilience_kill/checkpoints/"*.snap > /dev/null

# Resume leg: restore the victim's snapshots, replay the tail.
target/release/run_experiment "${resilience_args[@]}" \
  --out "$smoke_dir/resilience_resumed" \
  --resume "$smoke_dir/resilience_kill/checkpoints" > /dev/null
# Byte-identity gate: the resumed run must reproduce the uninterrupted
# run's artifacts exactly. Only wall-clock perf, the snapshot count
# (the resumed leg writes fewer), and the audit count (audits restart at
# the restore point) may differ.
strip_resilience() {
  python3 - "$1" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
doc.pop("perf", None)
doc.pop("checkpoints", None)
doc.pop("audit", None)
print(json.dumps(doc, indent=2, sort_keys=True))
PY
}
diff <(strip_resilience "$smoke_dir/resilience_ref/manifest.json") \
     <(strip_resilience "$smoke_dir/resilience_resumed/manifest.json")
grep -q '"violations": \[\]' "$smoke_dir/resilience_resumed/manifest.json"

echo "== supervised abort smoke (deadline -> exit 8, salvaged manifest)"
set +e
target/release/run_experiment fig02_scalability --out "$smoke_dir/deadline" \
  --set cities=10 --set duration_s=60 --set line_rates_mbps=10 \
  --set slowdown=false --set checkpoint_every_s=0.2 --set deadline_s=0.5 \
  > /dev/null 2>&1
deadline_code=$?
set -e
test "$deadline_code" -eq 8
grep -q '"status": "aborted"' "$smoke_dir/deadline/manifest.json"
grep -q '"last"' "$smoke_dir/deadline/manifest.json"

echo "All checks passed."
