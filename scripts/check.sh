#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo bench --no-run"
cargo bench --workspace --no-run

echo "== bench_routing compile + smoke (incremental repair engine)"
cargo build --release -q -p hypatia-bench --bin bench_routing
target/release/bench_routing --constellation telesat_t1 --cities 8 \
  --duration-s 2 --step-ms 200 --fail-frac 0.1 --mttr-s 2 --mode both

echo "== ext_failure_resilience smoke run (spec round-trip + faulted sim)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_failure_resilience --print-spec \
  --set duration_s=5 --set cities=10 --set pairs="Tokyo:Cairo" \
  --set fail_fracs=0.1 --set mttr_s=5 \
  --set routing_mode=incremental --set repair_churn_threshold=0.2 \
  > "$smoke_dir/spec.json"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  --spec "$smoke_dir/spec.json" --out "$smoke_dir/out" > /dev/null
test -f "$smoke_dir/out/manifest.json"
test -f "$smoke_dir/out/ext_failure_goodput.dat"

echo "All checks passed."
