#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cargo test -q"
cargo test -q --workspace

echo "== cargo bench --no-run"
cargo bench --workspace --no-run

echo "== bench_routing compile + smoke (incremental repair engine)"
cargo build --release -q -p hypatia-bench --bin bench_routing
target/release/bench_routing --constellation telesat_t1 --cities 8 \
  --duration-s 2 --step-ms 200 --fail-frac 0.1 --mttr-s 2 --mode both

echo "== ext_failure_resilience smoke run (spec round-trip + faulted sim)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_failure_resilience --print-spec \
  --set duration_s=5 --set cities=10 --set pairs="Tokyo:Cairo" \
  --set fail_fracs=0.1 --set mttr_s=5 \
  --set routing_mode=incremental --set repair_churn_threshold=0.2 \
  > "$smoke_dir/spec.json"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  --spec "$smoke_dir/spec.json" --out "$smoke_dir/out" > /dev/null
test -f "$smoke_dir/out/manifest.json"
test -f "$smoke_dir/out/ext_failure_goodput.dat"

echo "== sharded engine smoke run (sim_shards=4, faulted) + shard determinism"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_failure_resilience --out "$smoke_dir/sharded" \
  --set duration_s=4 --set cities=10 --set pairs="Tokyo:Cairo" \
  --set fail_fracs=0.1 --set mttr_s=2 --set sim_shards=4 > /dev/null
test -f "$smoke_dir/sharded/manifest.json"
grep -q '"sim_shards": 4' "$smoke_dir/sharded/manifest.json"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_failure_resilience --out "$smoke_dir/serial" \
  --set duration_s=4 --set cities=10 --set pairs="Tokyo:Cairo" \
  --set fail_fracs=0.1 --set mttr_s=2 --set sim_shards=1 > /dev/null
# Byte-identity gate: artifact checksums must not depend on the shard
# count; only the wall-clock rate and engine-telemetry lines may differ.
strip_engine() {
  python3 - "$1" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
doc.pop("perf", None)
print(json.dumps(doc, indent=2, sort_keys=True))
PY
}
diff <(strip_engine "$smoke_dir/sharded/manifest.json") \
     <(strip_engine "$smoke_dir/serial/manifest.json")

echo "== ext_flow_scaling smoke run (10k gravity flows, trace sampling on)"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_flow_scaling --out "$smoke_dir/flows10k" \
  --set flows=10000 --set trace_sample_every=8 \
  --set cities=20 --set duration_s=1 > /dev/null
test -f "$smoke_dir/flows10k/manifest.json"
test -f "$smoke_dir/flows10k/ext_flow_scaling_events_per_sec.dat"
grep -q 'trace sampling active' "$smoke_dir/flows10k/manifest.json"

echo "== flow-table determinism gate (1k flows, sampling off: arena vs apps)"
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_flow_scaling --out "$smoke_dir/flows_arena" \
  --set flows=1000 --set flow_table=arena --set perf_series=false \
  --set cities=20 --set duration_s=1 > /dev/null
cargo run --release -q -p hypatia-bench --bin run_experiment -- \
  ext_flow_scaling --out "$smoke_dir/flows_apps" \
  --set flows=1000 --set flow_table=apps --set perf_series=false \
  --set cities=20 --set duration_s=1 > /dev/null
# Byte-identity gate: arena flow tables must reproduce the per-flow-apps
# artifacts exactly; only wall-clock perf lines may differ.
diff <(strip_engine "$smoke_dir/flows_arena/manifest.json") \
     <(strip_engine "$smoke_dir/flows_apps/manifest.json")

echo "All checks passed."
