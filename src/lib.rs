//! Workspace-level test/example umbrella for Hypatia.
